#include "analysis/report_render.hpp"

#include <algorithm>
#include <cstdio>

#include "util/table.hpp"

namespace v6sonar::analysis {

namespace {

/// printf-style append; the renderers build one string so the batch
/// CLI and the daemon's wire responses share every formatted byte.
template <typename... Args>
void appendf(std::string& out, const char* fmt, Args... args) {
  char buf[256];
  const int n = std::snprintf(buf, sizeof buf, fmt, args...);
  if (n > 0) out.append(buf, std::min<std::size_t>(static_cast<std::size_t>(n), sizeof buf - 1));
}

std::string top_sources_text(const ReportBundle& a, std::size_t top, bool with_as) {
  std::string out;
  auto sources = a.sources.sources();
  std::sort(sources.begin(), sources.end(),
            [](const SourceReport& x, const SourceReport& y) { return x.packets > y.packets; });
  out += "\ntop sources by packets:\n";
  util::TextTable st(with_as
                         ? std::vector<std::string>{"source", "AS", "scans", "packets",
                                                    "max dsts/scan"}
                         : std::vector<std::string>{"source", "scans", "packets",
                                                    "max dsts/scan"});
  for (std::size_t i = 0; i < std::min(top, sources.size()); ++i) {
    const auto& s = sources[i];
    if (with_as)
      st.add_row({s.source.to_string(), std::to_string(s.asn), util::with_commas(s.scans),
                  util::with_commas(s.packets), util::with_commas(s.distinct_dsts_max)});
    else
      st.add_row({s.source.to_string(), util::with_commas(s.scans),
                  util::with_commas(s.packets), util::with_commas(s.distinct_dsts_max)});
  }
  out += st.render();
  if (sources.size() > top) appendf(out, "(+%zu more sources)\n", sources.size() - top);
  return out;
}

}  // namespace

std::string render_top_sources(const ReportBundle& a, std::size_t top) {
  std::string out;
  const auto t = a.sources.totals();
  appendf(out, "%llu scans from %llu sources in %llu ASes (%llu packets attributed)\n",
          static_cast<unsigned long long>(t.scans), static_cast<unsigned long long>(t.sources),
          static_cast<unsigned long long>(t.ases), static_cast<unsigned long long>(t.packets));
  out += top_sources_text(a, top, /*with_as=*/true);
  return out;
}

std::string render_as_report(const ReportBundle& a, std::size_t top) {
  std::string out;
  auto by_as = a.by_as.by_as();
  std::stable_sort(by_as.begin(), by_as.end(), [](const AsSources& x, const AsSources& y) {
    return x.packets > y.packets;
  });
  out += "\ntop ASes by packets:\n";
  util::TextTable at({"AS", "packets", "sources", "scans"});
  for (std::size_t i = 0; i < std::min(top, by_as.size()); ++i) {
    const auto& r = by_as[i];
    at.add_row({std::to_string(r.asn), util::with_commas(r.packets),
                util::with_commas(r.sources), util::with_commas(r.scans)});
  }
  out += at.render();
  if (by_as.size() > top) appendf(out, "(+%zu more ASes)\n", by_as.size() - top);
  return out;
}

std::string render_top_ports(const ReportBundle& a) {
  std::string out;
  const auto tp = a.top_ports.result();
  const std::size_t port_rows =
      std::max({tp.by_packets.size(), tp.by_scans.size(), tp.by_sources.size()});
  out += "\ntop ports, ranked three ways:\n";
  util::TextTable tt({"rank", "by packets", "by scans", "by sources"});
  const auto port_cell = [](const std::vector<TopPortsRow>& rows, std::size_t i) {
    if (i >= rows.size()) return std::string{};
    return std::to_string(rows[i].port) + " (" + util::percent(rows[i].share) + ")";
  };
  for (std::size_t i = 0; i < port_rows; ++i)
    tt.add_row({std::to_string(i + 1), port_cell(tp.by_packets, i), port_cell(tp.by_scans, i),
                port_cell(tp.by_sources, i)});
  out += tt.render();
  return out;
}

std::string render_report(const ReportBundle& a, std::size_t top) {
  std::string out = render_top_sources(a, top);
  out += render_as_report(a, top);

  const auto d = a.durations.stats();
  appendf(out, "\nscan durations (%zu events): median %ss  p90 %ss  max %ss\n", d.events,
          util::fixed(d.median_sec, 1).c_str(), util::fixed(d.p90_sec, 1).c_str(),
          util::fixed(d.max_sec, 1).c_str());

  const auto pb = a.port_buckets.shares();
  out += "\nport targeting breadth (share of scans / sources / packets):\n";
  util::TextTable pt({"ports per scan", "scans", "sources", "packets"});
  for (int b = 0; b < 4; ++b)
    pt.add_row({std::string(to_string(static_cast<PortBucket>(b))), util::percent(pb.scans[b]),
                util::percent(pb.sources[b]), util::percent(pb.packets[b])});
  out += pt.render();

  out += render_top_ports(a);

  const auto weeks = a.timeseries.weekly();
  appendf(out, "\nweekly activity (%zu weeks): overall top-2 share %s, mean weekly top-2 %s\n",
          weeks.size(), util::percent(a.timeseries.overall_top_k(2)).c_str(),
          util::percent(a.timeseries.mean_weekly_top_k(2)).c_str());
  util::TextTable wt({"week", "active sources", "packets", "top1", "top2"});
  for (const auto& w : weeks)
    wt.add_row({std::to_string(w.week), util::with_commas(w.active_sources),
                util::with_commas(w.packets), util::percent(w.top1_share),
                util::percent(w.top2_share)});
  out += wt.render();

  const auto dns = a.dns.report();
  appendf(out, "\nDNS targeting: %zu sources, %s all-in-DNS, %s with >=1/3 not-in-DNS\n",
          dns.sources, util::percent(dns.all_in_dns_fraction).c_str(),
          util::percent(dns.third_not_in_dns_fraction).c_str());
  return out;
}

std::string render_blocklist(const std::vector<core::Attribution>& blocklist) {
  std::string out;
  util::TextTable table({"blocked prefix", "level", "packets", "covered sources"});
  for (const auto& a : blocklist) {
    // Built with += (not operator+) to dodge GCC 12's -Wrestrict false
    // positive on const char* + std::string&&.
    std::string level = "/";
    level += std::to_string(a.level);
    table.add_row({a.source.to_string(), std::move(level), util::with_commas(a.packets),
                   util::with_commas(a.children)});
  }
  out += table.render();
  return out;
}

}  // namespace v6sonar::analysis
