// Shared analyzer bundle + text renderers.
//
// One struct holds the full streaming analyzer set — one incremental
// analyzer per paper table, all foldable over a scan-event stream in
// bounded memory — and one family of renderers turns that state into
// the report text. Both the batch CLI (`detect --report`, `report`)
// and the v6sonard query plane build on this, so a daemon report is
// byte-identical to a batch run over the same events by construction:
// there is exactly one fold and exactly one formatter.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/dns_targeting.hpp"
#include "analysis/ports.hpp"
#include "analysis/reports.hpp"
#include "analysis/timeseries.hpp"
#include "core/adaptive.hpp"
#include "core/event_sink.hpp"

namespace v6sonar::analysis {

/// The full streaming analyzer bundle. Copyable and movable: the
/// daemon's snapshot seam publishes per-shard copies of this state,
/// and merge() is the rendezvous that folds them back together.
struct ReportBundle {
  SourceAnalyzer sources;
  AsAnalyzer by_as;
  DurationAnalyzer durations;
  TimeSeriesAnalyzer timeseries;
  PortBucketAnalyzer port_buckets;
  TopPortsAnalyzer top_ports;
  DnsTargetingAnalyzer dns;

  explicit ReportBundle(std::size_t top = 10) : top_ports(top) {}

  /// Hang every analyzer off one fan-out so a single pass over the
  /// event stream feeds every analysis.
  void attach(core::FanOutSink& fan) {
    fan.add(sources);
    fan.add(by_as);
    fan.add(durations);
    fan.add(timeseries);
    fan.add(port_buckets);
    fan.add(top_ports);
    fan.add(dns);
  }

  /// Fold one event into every analyzer without consuming it — the
  /// snapshot-publisher path, where the event continues downstream.
  void observe(const core::ScanEvent& ev) {
    sources.observe(ev);
    by_as.observe(ev);
    durations.observe(ev);
    timeseries.observe(ev);
    port_buckets.observe(ev);
    top_ports.observe(ev);
    dns.observe(ev);
  }

  /// Absorb another bundle's state, member-wise — per-shard bundles
  /// fold into one before rendering. Analyzer merge contracts apply
  /// (notably AsAnalyzer: merge shards in stream order).
  void merge(ReportBundle&& other) {
    sources.merge(std::move(other.sources));
    by_as.merge(std::move(other.by_as));
    durations.merge(std::move(other.durations));
    timeseries.merge(std::move(other.timeseries));
    port_buckets.merge(std::move(other.port_buckets));
    top_ports.merge(std::move(other.top_ports));
    dns.merge(std::move(other.dns));
  }

  /// Freeze/thaw, member-wise in declaration order (core::StateCodec
  /// contracts apply per analyzer: load onto a same-configured fresh
  /// bundle).
  void save(util::StateWriter& w) const {
    sources.save(w);
    by_as.save(w);
    durations.save(w);
    timeseries.save(w);
    port_buckets.save(w);
    top_ports.save(w);
    dns.save(w);
  }
  void load(util::StateReader& r) {
    sources.load(r);
    by_as.load(r);
    durations.load(r);
    timeseries.load(r);
    port_buckets.load(r);
    top_ports.load(r);
    dns.load(r);
  }
};

/// Render the full report (sources, ASes, durations, ports, weekly,
/// DNS) exactly as `v6sonar detect --report` prints it.
[[nodiscard]] std::string render_report(const ReportBundle& a, std::size_t top);

/// Individual sections, for the daemon's narrower query verbs.
[[nodiscard]] std::string render_top_sources(const ReportBundle& a, std::size_t top);
[[nodiscard]] std::string render_top_ports(const ReportBundle& a);
[[nodiscard]] std::string render_as_report(const ReportBundle& a, std::size_t top);

/// Render an attribution set as the IDS blocklist table.
[[nodiscard]] std::string render_blocklist(const std::vector<core::Attribution>& blocklist);

}  // namespace v6sonar::analysis
