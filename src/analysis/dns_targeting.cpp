#include "analysis/dns_targeting.hpp"

namespace v6sonar::analysis {

void DnsTargetingAnalyzer::consume(const core::ScanEvent& ev) {
  if (exclude_asn_ != 0 && ev.src_asn == exclude_asn_) return;
  auto& a = by_source_[ev.source];
  // Summing per-event distinct counts can double-count targets hit in
  // several events of one source; the in/not-in ratio is what §3.3
  // reports and it is preserved.
  a.dsts += ev.distinct_dsts;
  a.in_dns += ev.distinct_dsts_in_dns;
}

void DnsTargetingAnalyzer::merge_from(Analyzer& other_base) {
  auto& other = dynamic_cast<DnsTargetingAnalyzer&>(other_base);
  other.by_source_.for_each([&](const net::Ipv6Prefix& src, const Acc& o) {
    auto& a = by_source_[src];
    a.dsts += o.dsts;
    a.in_dns += o.in_dns;
  });
}

DnsTargetingReport DnsTargetingAnalyzer::report() const {
  DnsTargetingReport rep;
  rep.sources = by_source_.size();
  if (by_source_.empty()) return rep;
  std::size_t all_in = 0, third_not = 0;
  by_source_.for_each([&](const net::Ipv6Prefix& src, const Acc& a) {
    const double not_in =
        a.dsts == 0 ? 0.0
                    : static_cast<double>(a.dsts - a.in_dns) / static_cast<double>(a.dsts);
    rep.not_in_dns_fraction.emplace(src, not_in);
    all_in += not_in == 0.0;
    third_not += not_in >= 1.0 / 3.0;
  });
  rep.all_in_dns_fraction = static_cast<double>(all_in) / static_cast<double>(by_source_.size());
  rep.third_not_in_dns_fraction =
      static_cast<double>(third_not) / static_cast<double>(by_source_.size());
  return rep;
}

void DnsTargetingAnalyzer::save(util::StateWriter& w) const {
  w.u32(exclude_asn_);
  util::save_flat(w, by_source_);
}

void DnsTargetingAnalyzer::load(util::StateReader& r) {
  if (!by_source_.empty())
    throw std::runtime_error("DnsTargetingAnalyzer::load: analyzer already fed");
  if (r.u32() != exclude_asn_)
    throw std::runtime_error("DnsTargetingAnalyzer::load: configuration mismatch");
  util::load_flat(r, by_source_);
}

DnsTargetingReport dns_targeting(const std::vector<core::ScanEvent>& events,
                                 std::uint32_t exclude_asn) {
  DnsTargetingAnalyzer a(exclude_asn);
  for (const auto& ev : events) a.observe(ev);
  a.flush();
  return a.report();
}

NearbyProbeAnalysis::NearbyProbeAnalysis(std::vector<net::Ipv6Prefix> sources,
                                         int source_prefix_len)
    : len_(source_prefix_len) {
  for (const auto& s : sources) {
    results_.emplace(s, SourceResult{});
    seen_.emplace(s, Seen{});
  }
}

void NearbyProbeAnalysis::feed(const sim::LogRecord& r) {
  const net::Ipv6Prefix src{r.src, len_};
  const auto it = results_.find(src);
  if (it == results_.end()) return;
  Seen& seen = seen_.at(src);

  if (r.dst_in_dns) {
    for (int w = 0; w < 4; ++w)
      seen.in_dns_by_window[w].insert(r.dst.masked(kWindows[w]));
    return;
  }
  ++it->second.not_in_dns_probes;
  for (int w = 0; w < 4; ++w)
    it->second.preceded[w] += seen.in_dns_by_window[w].contains(r.dst.masked(kWindows[w]));
}

}  // namespace v6sonar::analysis
