// Port-targeting analyses (§3.3, Figs. 4 and 8, Table 3).
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "core/scan_event.hpp"

namespace v6sonar::analysis {

/// Footnote-9 classification of a scan by the fraction f of its
/// packets hitting its most common port:
///   f > 0.5    -> single port
///   f > 0.09   -> fewer than 10 ports
///   f > 0.009  -> fewer than 100 ports
///   otherwise  -> more than 100 ports.
enum class PortBucket { kSingle, kUnder10, kUnder100, kOver100 };

[[nodiscard]] PortBucket classify_ports(const core::ScanEvent& ev) noexcept;
[[nodiscard]] std::string_view to_string(PortBucket b) noexcept;

/// Fig. 4 / Fig. 8 rows: per bucket, the share of scans, of distinct
/// scan sources, and of scan packets.
struct PortBucketShares {
  double scans[4] = {};
  double sources[4] = {};
  double packets[4] = {};
  std::uint64_t total_scans = 0;
};

[[nodiscard]] PortBucketShares port_bucket_shares(const std::vector<core::ScanEvent>& events);

/// Table 3: top ports ranked three ways. `exclude` (optional) removes
/// events (e.g. AS #18's, which §3.3 reports separately because it
/// holds 80% of /64 sources).
struct TopPortsRow {
  std::uint16_t port = 0;
  double share = 0;  ///< meaning depends on the ranking
};

struct TopPorts {
  std::vector<TopPortsRow> by_packets;  ///< share of all scan packets
  std::vector<TopPortsRow> by_scans;    ///< share of scans targeting the port
  std::vector<TopPortsRow> by_sources;  ///< share of sources targeting the port
};

[[nodiscard]] TopPorts top_ports(const std::vector<core::ScanEvent>& events, std::size_t n,
                                 const std::function<bool(const core::ScanEvent&)>& exclude = {});

}  // namespace v6sonar::analysis
