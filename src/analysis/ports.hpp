// Port-targeting analyses (§3.3, Figs. 4 and 8, Table 3).
//
// PortBucketAnalyzer / TopPortsAnalyzer are the incremental cores
// (core::EventSinks); the vector entry points replay through them
// (see analyzer.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/analyzer.hpp"
#include "core/scan_event.hpp"
#include "net/prefix.hpp"
#include "util/flat_hash.hpp"

namespace v6sonar::analysis {

/// Footnote-9 classification of a scan by the fraction f of its
/// packets hitting its most common port:
///   f > 0.5    -> single port
///   f > 0.09   -> fewer than 10 ports
///   f > 0.009  -> fewer than 100 ports
///   otherwise  -> more than 100 ports.
enum class PortBucket { kSingle, kUnder10, kUnder100, kOver100 };

[[nodiscard]] PortBucket classify_ports(const core::ScanEvent& ev) noexcept;
[[nodiscard]] std::string_view to_string(PortBucket b) noexcept;

/// Fig. 4 / Fig. 8 rows: per bucket, the share of scans, of distinct
/// scan sources, and of scan packets.
struct PortBucketShares {
  double scans[4] = {};
  double sources[4] = {};
  double packets[4] = {};
  std::uint64_t total_scans = 0;
};

/// Streaming bucket fold: four counters plus one flat map of
/// source -> widest bucket exhibited.
class PortBucketAnalyzer final : public Analyzer {
 public:
  PortBucketAnalyzer() : Analyzer("port_buckets") {}

  [[nodiscard]] PortBucketShares shares() const;

  void save(util::StateWriter& w) const override;
  void load(util::StateReader& r) override;

 private:
  void consume(const core::ScanEvent& ev) override;
  void merge_from(Analyzer& other) override;

  std::uint64_t scans_[4] = {};
  std::uint64_t packets_[4] = {};
  std::uint64_t total_scans_ = 0;
  std::uint64_t total_packets_ = 0;
  util::FlatMap<net::Ipv6Prefix, std::uint32_t> source_bucket_;
};

[[nodiscard]] PortBucketShares port_bucket_shares(const std::vector<core::ScanEvent>& events);

/// Table 3: top ports ranked three ways. `exclude` (optional) removes
/// events (e.g. AS #18's, which §3.3 reports separately because it
/// holds 80% of /64 sources).
struct TopPortsRow {
  std::uint16_t port = 0;
  double share = 0;  ///< meaning depends on the ranking
};

struct TopPorts {
  std::vector<TopPortsRow> by_packets;  ///< share of all scan packets
  std::vector<TopPortsRow> by_scans;    ///< share of scans targeting the port
  std::vector<TopPortsRow> by_sources;  ///< share of sources targeting the port
};

/// Streaming Table-3 fold: per-port packet/scan/source counters in one
/// flat map, with (port, source) distinctness tracked in a flat set.
class TopPortsAnalyzer final : public Analyzer {
 public:
  explicit TopPortsAnalyzer(std::size_t n,
                            std::function<bool(const core::ScanEvent&)> exclude = {})
      : Analyzer("top_ports"), n_(n), exclude_(std::move(exclude)) {}

  [[nodiscard]] TopPorts result() const;

  /// The exclude predicate is opaque and NOT serialized; load()
  /// requires the thawed instance to be constructed with the same
  /// predicate presence (and, by the StateCodec contract, semantics).
  void save(util::StateWriter& w) const override;
  void load(util::StateReader& r) override;

 private:
  void consume(const core::ScanEvent& ev) override;
  void merge_from(Analyzer& other) override;

  struct Acc {
    std::uint64_t packets = 0;
    std::uint64_t scans = 0;
    std::uint64_t sources = 0;
  };
  struct PortSourceKey {
    std::uint32_t port = 0;
    net::Ipv6Prefix source;
    friend bool operator==(const PortSourceKey&, const PortSourceKey&) = default;
  };
  struct PortSourceHash {
    std::size_t operator()(const PortSourceKey& k) const noexcept {
      return std::hash<net::Ipv6Prefix>{}(k.source) ^
             (static_cast<std::size_t>(k.port) * 0x9E3779B97F4A7C15ULL);
    }
  };

  std::size_t n_;
  std::function<bool(const core::ScanEvent&)> exclude_;
  util::FlatMap<std::uint32_t, Acc, util::IntHash> by_port_;
  util::FlatSet<PortSourceKey, PortSourceHash> port_source_seen_;
  util::FlatSet<net::Ipv6Prefix> all_sources_;
  std::uint64_t total_packets_ = 0;
  std::uint64_t total_scans_ = 0;
};

[[nodiscard]] TopPorts top_ports(const std::vector<core::ScanEvent>& events, std::size_t n,
                                 const std::function<bool(const core::ScanEvent&)>& exclude = {});

}  // namespace v6sonar::analysis
