// Bounds-checked big-endian byte cursors for header encode/decode.
//
// Decode paths return false / nullopt instead of throwing: malformed
// packets are data, not errors (Core Guidelines E.* — exceptions are
// for violated preconditions and unrecoverable states, and the packet
// hot path must not pay for unwinding).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace v6sonar::wire {

/// Reads big-endian integers from a byte span, tracking position.
class Reader {
 public:
  explicit constexpr Reader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

  [[nodiscard]] constexpr std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] constexpr std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] constexpr bool ok() const noexcept { return !failed_; }

  /// Read helpers: on underrun they set the failed flag and return 0;
  /// callers check ok() once at the end (monadic style keeps the
  /// decoders linear).
  constexpr std::uint8_t u8() noexcept { return static_cast<std::uint8_t>(take(1)); }
  constexpr std::uint16_t u16() noexcept { return static_cast<std::uint16_t>(take(2)); }
  constexpr std::uint32_t u32() noexcept { return static_cast<std::uint32_t>(take(4)); }
  constexpr std::uint64_t u64() noexcept { return take(8); }

  /// View of the next n bytes (empty + failed on underrun); advances.
  constexpr std::span<const std::uint8_t> bytes(std::size_t n) noexcept {
    if (failed_ || remaining() < n) {
      failed_ = true;
      return {};
    }
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  constexpr void skip(std::size_t n) noexcept { (void)bytes(n); }

 private:
  constexpr std::uint64_t take(std::size_t n) noexcept {
    if (failed_ || remaining() < n) {
      failed_ = true;
      return 0;
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) v = v << 8 | data_[pos_ + i];
    pos_ += n;
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

/// Appends big-endian integers to a byte vector.
class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) noexcept : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void bytes(std::span<const std::uint8_t> b) { out_.insert(out_.end(), b.begin(), b.end()); }
  void zeros(std::size_t n) { out_.insert(out_.end(), n, 0); }

  [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }

 private:
  std::vector<std::uint8_t>& out_;
};

}  // namespace v6sonar::wire
