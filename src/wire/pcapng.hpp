// pcapng (pcap next generation) file format, from scratch.
//
// The classic pcap reader in wire/pcap.hpp covers the historic MAWI
// archive; newer tooling (tcpdump -w on modern systems, Wireshark
// exports) writes pcapng. Supported subset: Section Header Block,
// Interface Description Block (with if_tsresol), Enhanced Packet
// Block; other block types are skipped. Both byte orders are handled.
// Format reference: draft-tuexen-opsawg-pcapng.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "wire/pcap.hpp"

namespace v6sonar::wire {

/// Streaming pcapng writer (one section, one Ethernet interface,
/// microsecond timestamps). Throws std::runtime_error on I/O failure.
class PcapngWriter {
 public:
  explicit PcapngWriter(const std::string& path, std::uint32_t snaplen = 65'535);
  ~PcapngWriter();

  PcapngWriter(const PcapngWriter&) = delete;
  PcapngWriter& operator=(const PcapngWriter&) = delete;

  /// Append one frame at the given microsecond timestamp.
  void write(std::int64_t ts_us, std::span<const std::uint8_t> frame);

  void close();

  [[nodiscard]] std::uint64_t records_written() const noexcept { return count_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::uint64_t count_ = 0;
};

/// Streaming pcapng reader. Yields records with ts_frac in
/// microseconds (timestamps are converted from the interface's
/// declared resolution).
class PcapngReader {
 public:
  explicit PcapngReader(const std::string& path);
  ~PcapngReader();

  PcapngReader(const PcapngReader&) = delete;
  PcapngReader& operator=(const PcapngReader&) = delete;

  /// Next packet record, or nullopt at end of file. Non-packet blocks
  /// are skipped transparently.
  [[nodiscard]] std::optional<PcapRecord> next();

  [[nodiscard]] std::uint32_t link_type() const noexcept;
  [[nodiscard]] bool truncated() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Sniff a file's capture format by magic number.
enum class CaptureFormat { kPcap, kPcapng, kUnknown };
[[nodiscard]] CaptureFormat detect_capture_format(const std::string& path);

}  // namespace v6sonar::wire
