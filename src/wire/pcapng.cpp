#include "wire/pcapng.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace v6sonar::wire {

namespace {

constexpr std::uint32_t kShbType = 0x0A0D'0D0A;
constexpr std::uint32_t kIdbType = 0x0000'0001;
constexpr std::uint32_t kEpbType = 0x0000'0006;
constexpr std::uint32_t kByteOrderMagic = 0x1A2B'3C4D;

std::uint32_t bswap32(std::uint32_t v) noexcept {
  return v << 24 | (v & 0xFF00) << 8 | (v >> 8 & 0xFF00) | v >> 24;
}
std::uint16_t bswap16(std::uint16_t v) noexcept {
  return static_cast<std::uint16_t>(v << 8 | v >> 8);
}

struct File {
  std::FILE* f = nullptr;
  File(const std::string& path, const char* mode) : f(std::fopen(path.c_str(), mode)) {
    if (!f) throw std::runtime_error("pcapng: cannot open " + path);
  }
  ~File() {
    if (f) std::fclose(f);
  }
};

void put(std::FILE* f, const void* p, std::size_t n) {
  if (std::fwrite(p, 1, n, f) != n) throw std::runtime_error("pcapng: write failed");
}
void put32(std::FILE* f, std::uint32_t v) { put(f, &v, 4); }
void put16(std::FILE* f, std::uint16_t v) { put(f, &v, 2); }

}  // namespace

struct PcapngWriter::Impl {
  Impl(const std::string& path, std::uint32_t snaplen) : file(path, "wb") {
    // Section Header Block: type, length, magic, version 1.0,
    // section length unknown (-1), no options.
    put32(file.f, kShbType);
    put32(file.f, 28);
    put32(file.f, kByteOrderMagic);
    put16(file.f, 1);
    put16(file.f, 0);
    const std::uint64_t unknown = ~0ULL;
    put(file.f, &unknown, 8);
    put32(file.f, 28);
    // Interface Description Block: Ethernet, snaplen, no options
    // (if_tsresol defaults to microseconds).
    put32(file.f, kIdbType);
    put32(file.f, 20);
    put16(file.f, static_cast<std::uint16_t>(kLinkTypeEthernet));
    put16(file.f, 0);  // reserved
    put32(file.f, snaplen);
    put32(file.f, 20);
  }
  File file;
};

PcapngWriter::PcapngWriter(const std::string& path, std::uint32_t snaplen)
    : impl_(std::make_unique<Impl>(path, snaplen)) {}

PcapngWriter::~PcapngWriter() = default;

void PcapngWriter::write(std::int64_t ts_us, std::span<const std::uint8_t> frame) {
  if (!impl_) throw std::runtime_error("pcapng: writer closed");
  const std::uint32_t cap = static_cast<std::uint32_t>(frame.size());
  const std::uint32_t padded = (cap + 3) & ~3u;
  const std::uint32_t total = 32 + padded;
  std::FILE* f = impl_->file.f;
  put32(f, kEpbType);
  put32(f, total);
  put32(f, 0);  // interface id
  put32(f, static_cast<std::uint32_t>(static_cast<std::uint64_t>(ts_us) >> 32));
  put32(f, static_cast<std::uint32_t>(static_cast<std::uint64_t>(ts_us)));
  put32(f, cap);  // captured length
  put32(f, cap);  // original length
  if (cap) put(f, frame.data(), cap);
  const std::uint8_t pad[4] = {};
  if (padded != cap) put(f, pad, padded - cap);
  put32(f, total);
  ++count_;
}

void PcapngWriter::close() { impl_.reset(); }

struct PcapngReader::Impl {
  explicit Impl(const std::string& path) : file(path, "rb") {
    // The SHB must come first; its byte-order magic tells us how to
    // read every other field.
    std::uint32_t type = 0, len = 0;
    if (std::fread(&type, 4, 1, file.f) != 1 || std::fread(&len, 4, 1, file.f) != 1 ||
        type != kShbType)
      throw std::runtime_error("pcapng: not a pcapng file: " + path);
    std::uint32_t magic = 0;
    if (std::fread(&magic, 4, 1, file.f) != 1)
      throw std::runtime_error("pcapng: truncated SHB in " + path);
    if (magic == kByteOrderMagic)
      swapped = false;
    else if (bswap32(magic) == kByteOrderMagic)
      swapped = true;
    else
      throw std::runtime_error("pcapng: bad byte-order magic in " + path);
    const std::uint32_t block_len = swapped ? bswap32(len) : len;
    if (block_len < 28) throw std::runtime_error("pcapng: bad SHB length");
    // Skip the rest of the SHB (version, section length, options,
    // trailing length).
    skip(block_len - 12);
  }

  void skip(std::size_t n) {
    if (std::fseek(file.f, static_cast<long>(n), SEEK_CUR) != 0)
      throw std::runtime_error("pcapng: seek failed");
  }

  [[nodiscard]] std::uint32_t r32(const std::uint8_t* p) const noexcept {
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return swapped ? bswap32(v) : v;
  }
  [[nodiscard]] std::uint16_t r16(const std::uint8_t* p) const noexcept {
    std::uint16_t v;
    std::memcpy(&v, p, 2);
    return swapped ? bswap16(v) : v;
  }

  File file;
  bool swapped = false;
  bool truncated = false;
  std::uint32_t link_type = kLinkTypeEthernet;
  // Ticks per second of interface 0 (if_tsresol); default microseconds.
  std::uint64_t ticks_per_sec = 1'000'000;
};

PcapngReader::PcapngReader(const std::string& path) : impl_(std::make_unique<Impl>(path)) {}
PcapngReader::~PcapngReader() = default;

std::optional<PcapRecord> PcapngReader::next() {
  auto& im = *impl_;
  while (true) {
    std::uint8_t head[8];
    const std::size_t got = std::fread(head, 1, 8, im.file.f);
    if (got == 0) return std::nullopt;
    if (got != 8) {
      im.truncated = true;
      return std::nullopt;
    }
    const std::uint32_t type = im.r32(head);
    const std::uint32_t block_len = im.r32(head + 4);
    if (block_len < 12 || block_len > (1u << 26)) {
      im.truncated = true;
      return std::nullopt;
    }
    std::vector<std::uint8_t> body(block_len - 12);
    if (!body.empty() && std::fread(body.data(), 1, body.size(), im.file.f) != body.size()) {
      im.truncated = true;
      return std::nullopt;
    }
    std::uint8_t tail[4];
    if (std::fread(tail, 1, 4, im.file.f) != 4) {
      im.truncated = true;
      return std::nullopt;
    }

    if (type == kIdbType && body.size() >= 8) {
      im.link_type = im.r16(body.data());
      // Walk options for if_tsresol (code 9, length 1).
      std::size_t pos = 8;
      while (pos + 4 <= body.size()) {
        const std::uint16_t code = im.r16(body.data() + pos);
        const std::uint16_t olen = im.r16(body.data() + pos + 2);
        pos += 4;
        if (pos + olen > body.size()) break;
        if (code == 0) break;  // opt_endofopt
        if (code == 9 && olen >= 1) {
          const std::uint8_t resol = body[pos];
          im.ticks_per_sec = 1;
          if (resol & 0x80) {
            for (int i = 0; i < (resol & 0x7F); ++i) im.ticks_per_sec *= 2;
          } else {
            for (int i = 0; i < resol; ++i) im.ticks_per_sec *= 10;
          }
        }
        pos += (olen + 3u) & ~3u;
      }
      continue;
    }
    if (type != kEpbType) continue;  // skip anything else
    if (body.size() < 20) {
      im.truncated = true;
      return std::nullopt;
    }

    const std::uint64_t ts_ticks =
        (static_cast<std::uint64_t>(im.r32(body.data() + 4)) << 32) |
        im.r32(body.data() + 8);
    const std::uint32_t cap_len = im.r32(body.data() + 12);
    if (20 + cap_len > body.size()) {
      im.truncated = true;
      return std::nullopt;
    }
    PcapRecord rec;
    rec.ts_sec = static_cast<std::int64_t>(ts_ticks / im.ticks_per_sec);
    // ts_frac is expressed in microseconds for pcapng records.
    rec.ts_frac = static_cast<std::uint32_t>((ts_ticks % im.ticks_per_sec) * 1'000'000 /
                                             im.ticks_per_sec);
    rec.data.assign(body.begin() + 20, body.begin() + 20 + cap_len);
    return rec;
  }
}

std::uint32_t PcapngReader::link_type() const noexcept { return impl_->link_type; }
bool PcapngReader::truncated() const noexcept { return impl_->truncated; }

CaptureFormat detect_capture_format(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return CaptureFormat::kUnknown;
  std::uint32_t magic = 0;
  const bool ok = std::fread(&magic, 4, 1, f) == 1;
  std::fclose(f);
  if (!ok) return CaptureFormat::kUnknown;
  if (magic == kShbType) return CaptureFormat::kPcapng;
  switch (magic) {
    case 0xa1b2c3d4:
    case 0xa1b23c4d:
    case 0xd4c3b2a1:
    case 0x4d3cb2a1:
      return CaptureFormat::kPcap;
    default:
      return CaptureFormat::kUnknown;
  }
}

}  // namespace v6sonar::wire
