// Protocol header encode/decode: Ethernet II, IPv6 fixed header, TCP,
// UDP, ICMPv6 — the protocols visible at the paper's two vantage
// points. All multi-byte fields are network byte order on the wire.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/ipv6.hpp"
#include "wire/cursor.hpp"

namespace v6sonar::wire {

/// IANA protocol numbers we care about.
enum class IpProto : std::uint8_t {
  kTcp = 6,
  kUdp = 17,
  kIcmpv6 = 58,
};

/// IPv6 extension headers (RFC 8200 §4). Real captures carry these
/// between the fixed header and the transport; decoders skip them.
enum class ExtHeader : std::uint8_t {
  kHopByHop = 0,
  kRouting = 43,
  kFragment = 44,
  kDestOptions = 60,
};

[[nodiscard]] constexpr bool is_extension_header(std::uint8_t next_header) noexcept {
  return next_header == 0 || next_header == 43 || next_header == 44 || next_header == 60;
}

/// Skip one extension header at the reader's position. Returns the
/// next-header value, or nullopt on truncation. `next_header` is the
/// value that announced this extension.
[[nodiscard]] std::optional<std::uint8_t> skip_extension_header(Reader& r,
                                                                std::uint8_t next_header) noexcept;

/// EtherTypes.
inline constexpr std::uint16_t kEtherTypeIpv6 = 0x86DD;

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;
  std::array<std::uint8_t, 6> dst{};
  std::array<std::uint8_t, 6> src{};
  std::uint16_t ether_type = kEtherTypeIpv6;

  void encode(Writer& w) const;
  [[nodiscard]] static std::optional<EthernetHeader> decode(Reader& r) noexcept;
};

/// IPv6 fixed header (RFC 8200 §3). No extension-header support is
/// needed for the telescope traffic, but decode reports the
/// next-header value so callers can skip unknown payloads explicitly.
struct Ipv6Header {
  static constexpr std::size_t kSize = 40;
  std::uint8_t traffic_class = 0;
  std::uint32_t flow_label = 0;  ///< 20 bits used
  std::uint16_t payload_length = 0;
  std::uint8_t next_header = 0;
  std::uint8_t hop_limit = 64;
  net::Ipv6Address src;
  net::Ipv6Address dst;

  void encode(Writer& w) const;
  [[nodiscard]] static std::optional<Ipv6Header> decode(Reader& r) noexcept;
};

struct TcpHeader {
  static constexpr std::size_t kSize = 20;  ///< without options
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t data_offset_words = 5;  ///< header length in 32-bit words
  std::uint8_t flags = 0x02;           ///< SYN by default (scan probes)
  std::uint16_t window = 65'535;
  std::uint16_t checksum = 0;
  std::uint16_t urgent = 0;

  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kAck = 0x10;

  void encode(Writer& w) const;
  [[nodiscard]] static std::optional<TcpHeader> decode(Reader& r) noexcept;
};

struct UdpHeader {
  static constexpr std::size_t kSize = 8;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = kSize;  ///< header + payload
  std::uint16_t checksum = 0;

  void encode(Writer& w) const;
  [[nodiscard]] static std::optional<UdpHeader> decode(Reader& r) noexcept;
};

struct Icmpv6Header {
  static constexpr std::size_t kSize = 8;  ///< incl. echo id/seq words
  std::uint8_t type = 128;  ///< echo request
  std::uint8_t code = 0;
  std::uint16_t checksum = 0;
  std::uint16_t ident = 0;
  std::uint16_t sequence = 0;

  static constexpr std::uint8_t kEchoRequest = 128;
  static constexpr std::uint8_t kEchoReply = 129;

  void encode(Writer& w) const;
  [[nodiscard]] static std::optional<Icmpv6Header> decode(Reader& r) noexcept;
};

/// RFC 1071 Internet checksum over a byte span (pads odd length).
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept;

/// Transport checksum with the IPv6 pseudo-header (RFC 8200 §8.1).
/// `l4` is the full transport header+payload with its checksum field
/// zeroed (or as received, for verification: result 0 means valid).
[[nodiscard]] std::uint16_t transport_checksum(const net::Ipv6Address& src,
                                               const net::Ipv6Address& dst,
                                               IpProto proto,
                                               std::span<const std::uint8_t> l4) noexcept;

}  // namespace v6sonar::wire
