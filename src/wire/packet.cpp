#include "wire/packet.hpp"

namespace v6sonar::wire {

std::optional<PacketSummary> parse_frame(std::span<const std::uint8_t> frame) noexcept {
  Reader r(frame);
  const auto eth = EthernetHeader::decode(r);
  if (!eth || eth->ether_type != kEtherTypeIpv6) return std::nullopt;
  const auto ip = Ipv6Header::decode(r);
  if (!ip) return std::nullopt;

  PacketSummary s;
  s.src = ip->src;
  s.dst = ip->dst;
  s.length = static_cast<std::uint32_t>(frame.size());
  s.hop_limit = ip->hop_limit;

  // Walk extension headers to the transport (bounded: a chain can't
  // be longer than the frame; cap guards against crafted loops).
  std::uint8_t next = ip->next_header;
  for (int hops = 0; is_extension_header(next) && hops < 8; ++hops) {
    const auto n = skip_extension_header(r, next);
    if (!n) return std::nullopt;
    next = *n;
  }
  if (is_extension_header(next)) return std::nullopt;  // chain too long

  switch (next) {
    case static_cast<std::uint8_t>(IpProto::kTcp): {
      const auto tcp = TcpHeader::decode(r);
      if (!tcp) return std::nullopt;
      s.proto = IpProto::kTcp;
      s.src_port = tcp->src_port;
      s.dst_port = tcp->dst_port;
      s.tcp_flags = tcp->flags;
      return s;
    }
    case static_cast<std::uint8_t>(IpProto::kUdp): {
      const auto udp = UdpHeader::decode(r);
      if (!udp) return std::nullopt;
      s.proto = IpProto::kUdp;
      s.src_port = udp->src_port;
      s.dst_port = udp->dst_port;
      return s;
    }
    case static_cast<std::uint8_t>(IpProto::kIcmpv6): {
      const auto icmp = Icmpv6Header::decode(r);
      if (!icmp) return std::nullopt;
      s.proto = IpProto::kIcmpv6;
      s.src_port = 0;
      s.dst_port = static_cast<std::uint16_t>(std::uint16_t{icmp->type} << 8 | icmp->code);
      return s;
    }
    default:
      return std::nullopt;  // extension headers / other transports: not telescope traffic
  }
}

namespace {

/// Common L2+L3 scaffold; returns the index where the L4 bytes start.
std::size_t begin_frame(std::vector<std::uint8_t>& out, const net::Ipv6Address& src,
                        const net::Ipv6Address& dst, IpProto proto,
                        std::size_t l4_len) {
  Writer w(out);
  EthernetHeader eth;
  // Locally administered, deterministic MACs derived from the address
  // ends; cosmetic only.
  eth.src = {0x02, 0, 0, 0, 0, static_cast<std::uint8_t>(src.lo())};
  eth.dst = {0x02, 0, 0, 0, 1, static_cast<std::uint8_t>(dst.lo())};
  eth.encode(w);

  Ipv6Header ip;
  ip.payload_length = static_cast<std::uint16_t>(l4_len);
  ip.next_header = static_cast<std::uint8_t>(proto);
  ip.src = src;
  ip.dst = dst;
  ip.encode(w);
  return out.size();
}

void patch_checksum(std::vector<std::uint8_t>& out, std::size_t l4_start,
                    std::size_t checksum_offset, const net::Ipv6Address& src,
                    const net::Ipv6Address& dst, IpProto proto) {
  const std::span<const std::uint8_t> l4{out.data() + l4_start, out.size() - l4_start};
  const std::uint16_t ck = transport_checksum(src, dst, proto, l4);
  out[l4_start + checksum_offset] = static_cast<std::uint8_t>(ck >> 8);
  out[l4_start + checksum_offset + 1] = static_cast<std::uint8_t>(ck);
}

}  // namespace

std::vector<std::uint8_t> FrameBuilder::tcp(const net::Ipv6Address& src,
                                            const net::Ipv6Address& dst,
                                            std::uint16_t src_port, std::uint16_t dst_port,
                                            std::uint8_t flags, std::size_t payload_len) {
  std::vector<std::uint8_t> out;
  const std::size_t l4_len = TcpHeader::kSize + payload_len;
  out.reserve(EthernetHeader::kSize + Ipv6Header::kSize + l4_len);
  const std::size_t l4_start = begin_frame(out, src, dst, IpProto::kTcp, l4_len);
  Writer w(out);
  TcpHeader tcp;
  tcp.src_port = src_port;
  tcp.dst_port = dst_port;
  tcp.flags = flags;
  // Deterministic ISN derived from the endpoints, so identical probe
  // parameters produce identical frames (reproducible pcaps).
  tcp.seq = static_cast<std::uint32_t>(src.lo() ^ dst.lo() ^ (std::uint32_t{src_port} << 16 | dst_port));
  tcp.encode(w);
  w.zeros(payload_len);
  patch_checksum(out, l4_start, 16, src, dst, IpProto::kTcp);
  return out;
}

std::vector<std::uint8_t> FrameBuilder::udp(const net::Ipv6Address& src,
                                            const net::Ipv6Address& dst,
                                            std::uint16_t src_port, std::uint16_t dst_port,
                                            std::size_t payload_len) {
  std::vector<std::uint8_t> out;
  const std::size_t l4_len = UdpHeader::kSize + payload_len;
  out.reserve(EthernetHeader::kSize + Ipv6Header::kSize + l4_len);
  const std::size_t l4_start = begin_frame(out, src, dst, IpProto::kUdp, l4_len);
  Writer w(out);
  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  udp.length = static_cast<std::uint16_t>(l4_len);
  udp.encode(w);
  w.zeros(payload_len);
  patch_checksum(out, l4_start, 6, src, dst, IpProto::kUdp);
  return out;
}

std::vector<std::uint8_t> FrameBuilder::icmpv6_echo(const net::Ipv6Address& src,
                                                    const net::Ipv6Address& dst,
                                                    std::uint16_t ident, std::uint16_t sequence,
                                                    std::size_t payload_len) {
  std::vector<std::uint8_t> out;
  const std::size_t l4_len = Icmpv6Header::kSize + payload_len;
  out.reserve(EthernetHeader::kSize + Ipv6Header::kSize + l4_len);
  const std::size_t l4_start = begin_frame(out, src, dst, IpProto::kIcmpv6, l4_len);
  Writer w(out);
  Icmpv6Header icmp;
  icmp.type = Icmpv6Header::kEchoRequest;
  icmp.ident = ident;
  icmp.sequence = sequence;
  icmp.encode(w);
  w.zeros(payload_len);
  patch_checksum(out, l4_start, 2, src, dst, IpProto::kIcmpv6);
  return out;
}

}  // namespace v6sonar::wire
