#include "wire/headers.hpp"

#include <algorithm>

namespace v6sonar::wire {

void EthernetHeader::encode(Writer& w) const {
  w.bytes(dst);
  w.bytes(src);
  w.u16(ether_type);
}

std::optional<EthernetHeader> EthernetHeader::decode(Reader& r) noexcept {
  EthernetHeader h;
  auto d = r.bytes(6);
  auto s = r.bytes(6);
  h.ether_type = r.u16();
  if (!r.ok()) return std::nullopt;
  std::copy(d.begin(), d.end(), h.dst.begin());
  std::copy(s.begin(), s.end(), h.src.begin());
  return h;
}

void Ipv6Header::encode(Writer& w) const {
  w.u32(std::uint32_t{6} << 28 | std::uint32_t{traffic_class} << 20 |
        (flow_label & 0xFFFFF));
  w.u16(payload_length);
  w.u8(next_header);
  w.u8(hop_limit);
  w.u64(src.hi());
  w.u64(src.lo());
  w.u64(dst.hi());
  w.u64(dst.lo());
}

std::optional<Ipv6Header> Ipv6Header::decode(Reader& r) noexcept {
  const std::uint32_t vtf = r.u32();
  Ipv6Header h;
  h.payload_length = r.u16();
  h.next_header = r.u8();
  h.hop_limit = r.u8();
  const std::uint64_t shi = r.u64(), slo = r.u64();
  const std::uint64_t dhi = r.u64(), dlo = r.u64();
  if (!r.ok()) return std::nullopt;
  if (vtf >> 28 != 6) return std::nullopt;  // version must be 6
  h.traffic_class = static_cast<std::uint8_t>(vtf >> 20);
  h.flow_label = vtf & 0xFFFFF;
  h.src = net::Ipv6Address{shi, slo};
  h.dst = net::Ipv6Address{dhi, dlo};
  return h;
}

void TcpHeader::encode(Writer& w) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(seq);
  w.u32(ack);
  w.u16(static_cast<std::uint16_t>(std::uint16_t{data_offset_words} << 12 | flags));
  w.u16(window);
  w.u16(checksum);
  w.u16(urgent);
}

std::optional<TcpHeader> TcpHeader::decode(Reader& r) noexcept {
  TcpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.seq = r.u32();
  h.ack = r.u32();
  const std::uint16_t off_flags = r.u16();
  h.window = r.u16();
  h.checksum = r.u16();
  h.urgent = r.u16();
  if (!r.ok()) return std::nullopt;
  h.data_offset_words = static_cast<std::uint8_t>(off_flags >> 12);
  h.flags = static_cast<std::uint8_t>(off_flags & 0x3F);
  if (h.data_offset_words < 5) return std::nullopt;  // invalid offset
  // Skip options beyond the fixed 20 bytes.
  const std::size_t options = (static_cast<std::size_t>(h.data_offset_words) - 5) * 4;
  r.skip(options);
  if (!r.ok()) return std::nullopt;
  return h;
}

void UdpHeader::encode(Writer& w) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u16(length);
  w.u16(checksum);
}

std::optional<UdpHeader> UdpHeader::decode(Reader& r) noexcept {
  UdpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.length = r.u16();
  h.checksum = r.u16();
  if (!r.ok()) return std::nullopt;
  if (h.length < kSize) return std::nullopt;
  return h;
}

void Icmpv6Header::encode(Writer& w) const {
  w.u8(type);
  w.u8(code);
  w.u16(checksum);
  w.u16(ident);
  w.u16(sequence);
}

std::optional<Icmpv6Header> Icmpv6Header::decode(Reader& r) noexcept {
  Icmpv6Header h;
  h.type = r.u8();
  h.code = r.u8();
  h.checksum = r.u16();
  h.ident = r.u16();
  h.sequence = r.u16();
  if (!r.ok()) return std::nullopt;
  return h;
}

std::optional<std::uint8_t> skip_extension_header(Reader& r, std::uint8_t next_header) noexcept {
  // All four supported extensions lead with (next header, length), but
  // the length encoding differs for fragments.
  const std::uint8_t next = r.u8();
  const std::uint8_t hdr_ext_len = r.u8();
  if (!r.ok()) return std::nullopt;
  if (next_header == static_cast<std::uint8_t>(ExtHeader::kFragment)) {
    // Fragment header: fixed 8 bytes total; the second byte is reserved.
    r.skip(6);
  } else {
    // Length in 8-octet units, not counting the first 8 octets.
    r.skip(6 + static_cast<std::size_t>(hdr_ext_len) * 8);
  }
  if (!r.ok()) return std::nullopt;
  return next;
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept {
  std::uint64_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2)
    sum += static_cast<std::uint64_t>(data[i]) << 8 | data[i + 1];
  if (i < data.size()) sum += static_cast<std::uint64_t>(data[i]) << 8;
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::uint16_t transport_checksum(const net::Ipv6Address& src, const net::Ipv6Address& dst,
                                 IpProto proto, std::span<const std::uint8_t> l4) noexcept {
  // Pseudo-header: src (16) + dst (16) + length (4) + zeros (3) + next header (1).
  std::vector<std::uint8_t> buf;
  buf.reserve(40 + l4.size());
  Writer w(buf);
  w.u64(src.hi());
  w.u64(src.lo());
  w.u64(dst.hi());
  w.u64(dst.lo());
  w.u32(static_cast<std::uint32_t>(l4.size()));
  w.zeros(3);
  w.u8(static_cast<std::uint8_t>(proto));
  w.bytes(l4);
  return internet_checksum(buf);
}

}  // namespace v6sonar::wire
