#include "wire/pcap.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <stdexcept>

namespace v6sonar::wire {

namespace {

constexpr std::uint32_t kMagicMicro = 0xa1b2c3d4;
constexpr std::uint32_t kMagicNano = 0xa1b23c4d;
constexpr std::uint32_t kMagicMicroSwapped = 0xd4c3b2a1;
constexpr std::uint32_t kMagicNanoSwapped = 0x4d3cb2a1;

std::uint32_t bswap32(std::uint32_t v) noexcept {
  return v << 24 | (v & 0xFF00) << 8 | (v >> 8 & 0xFF00) | v >> 24;
}

std::uint16_t bswap16(std::uint16_t v) noexcept {
  return static_cast<std::uint16_t>(v << 8 | v >> 8);
}

/// RAII stdio handle. stdio is used (not fstream) for cheap unbuffered
/// control and simple error reporting.
struct File {
  std::FILE* f = nullptr;
  explicit File(const std::string& path, const char* mode) : f(std::fopen(path.c_str(), mode)) {
    if (!f) throw std::runtime_error("pcap: cannot open " + path);
  }
  ~File() {
    if (f) std::fclose(f);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
};

void put32(std::FILE* f, std::uint32_t v) {
  if (std::fwrite(&v, 4, 1, f) != 1) throw std::runtime_error("pcap: write failed");
}
void put16(std::FILE* f, std::uint16_t v) {
  if (std::fwrite(&v, 2, 1, f) != 1) throw std::runtime_error("pcap: write failed");
}

}  // namespace

struct PcapWriter::Impl {
  Impl(const std::string& path, bool ns, std::uint32_t snap)
      : file(path, "wb"), nanosecond(ns), snaplen(snap) {
    put32(file.f, ns ? kMagicNano : kMagicMicro);
    put16(file.f, 2);  // version major
    put16(file.f, 4);  // version minor
    put32(file.f, 0);  // thiszone
    put32(file.f, 0);  // sigfigs
    put32(file.f, snaplen);
    put32(file.f, kLinkTypeEthernet);
  }
  File file;
  bool nanosecond;
  std::uint32_t snaplen;
};

PcapWriter::PcapWriter(const std::string& path, bool nanosecond, std::uint32_t snaplen)
    : impl_(std::make_unique<Impl>(path, nanosecond, snaplen)) {}

PcapWriter::~PcapWriter() = default;
PcapWriter::PcapWriter(PcapWriter&&) noexcept = default;
PcapWriter& PcapWriter::operator=(PcapWriter&&) noexcept = default;

void PcapWriter::write(std::int64_t ts_sec, std::uint32_t ts_frac,
                       std::span<const std::uint8_t> frame) {
  if (!impl_) throw std::runtime_error("pcap: writer is closed");
  const std::uint32_t incl =
      static_cast<std::uint32_t>(std::min<std::size_t>(frame.size(), impl_->snaplen));
  put32(impl_->file.f, static_cast<std::uint32_t>(ts_sec));
  put32(impl_->file.f, ts_frac);
  put32(impl_->file.f, incl);
  put32(impl_->file.f, static_cast<std::uint32_t>(frame.size()));
  if (incl != 0 && std::fwrite(frame.data(), 1, incl, impl_->file.f) != incl)
    throw std::runtime_error("pcap: write failed");
  ++count_;
}

void PcapWriter::close() { impl_.reset(); }

struct PcapReader::Impl {
  explicit Impl(const std::string& path) : file(path, "rb") {
    std::uint32_t magic = 0;
    if (std::fread(&magic, 4, 1, file.f) != 1)
      throw std::runtime_error("pcap: empty or unreadable file: " + path);
    switch (magic) {
      case kMagicMicro: nanosecond = false; swapped = false; break;
      case kMagicNano: nanosecond = true; swapped = false; break;
      case kMagicMicroSwapped: nanosecond = false; swapped = true; break;
      case kMagicNanoSwapped: nanosecond = true; swapped = true; break;
      default: throw std::runtime_error("pcap: bad magic in " + path);
    }
    std::array<std::uint32_t, 5> rest{};  // ver, zone, sigfigs, snaplen, linktype
    if (std::fread(rest.data(), 4, rest.size(), file.f) != rest.size())
      throw std::runtime_error("pcap: truncated global header in " + path);
    link_type = swapped ? bswap32(rest[4]) : rest[4];
    snaplen = swapped ? bswap32(rest[3]) : rest[3];
    (void)bswap16;  // 16-bit version fields are read as part of rest[0]
  }
  File file;
  bool nanosecond = false;
  bool swapped = false;
  bool truncated = false;
  std::uint32_t link_type = 0;
  std::uint32_t snaplen = 0;
};

PcapReader::PcapReader(const std::string& path) : impl_(std::make_unique<Impl>(path)) {}
PcapReader::~PcapReader() = default;
PcapReader::PcapReader(PcapReader&&) noexcept = default;
PcapReader& PcapReader::operator=(PcapReader&&) noexcept = default;

std::optional<PcapRecord> PcapReader::next() {
  std::array<std::uint32_t, 4> hdr{};
  const std::size_t got = std::fread(hdr.data(), 4, hdr.size(), impl_->file.f);
  if (got == 0) return std::nullopt;  // clean EOF
  if (got != hdr.size()) {
    impl_->truncated = true;
    return std::nullopt;
  }
  if (impl_->swapped)
    for (auto& v : hdr) v = bswap32(v);

  PcapRecord rec;
  rec.ts_sec = static_cast<std::int64_t>(hdr[0]);
  rec.ts_frac = hdr[1];
  const std::uint32_t incl_len = hdr[2];
  // Sanity cap: a record claiming more than the snaplen (or an absurd
  // size) indicates corruption.
  if (incl_len > std::max<std::uint32_t>(impl_->snaplen, 262'144)) {
    impl_->truncated = true;
    return std::nullopt;
  }
  rec.data.resize(incl_len);
  if (incl_len != 0 &&
      std::fread(rec.data.data(), 1, incl_len, impl_->file.f) != incl_len) {
    impl_->truncated = true;
    return std::nullopt;
  }
  return rec;
}

bool PcapReader::nanosecond() const noexcept { return impl_->nanosecond; }
std::uint32_t PcapReader::link_type() const noexcept { return impl_->link_type; }
bool PcapReader::truncated() const noexcept { return impl_->truncated; }

}  // namespace v6sonar::wire
