// libpcap classic file format, from scratch (no libpcap dependency).
//
// Supports both the microsecond (0xa1b2c3d4) and nanosecond
// (0xa1b23c4d) magics, in either byte order, so real MAWI captures can
// be fed to the same pipeline the simulator uses.
// Format reference: https://wiki.wireshark.org/Development/LibpcapFileFormat
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace v6sonar::wire {

/// Link types we write/accept.
inline constexpr std::uint32_t kLinkTypeEthernet = 1;

/// One captured record.
struct PcapRecord {
  std::int64_t ts_sec = 0;
  std::uint32_t ts_frac = 0;  ///< micro- or nanoseconds per file resolution
  std::vector<std::uint8_t> data;

  /// Timestamp in nanoseconds since epoch (resolution-normalized by the reader).
  [[nodiscard]] std::int64_t ts_nanos(bool nanosecond_file) const noexcept {
    return ts_sec * 1'000'000'000LL +
           static_cast<std::int64_t>(ts_frac) * (nanosecond_file ? 1 : 1'000);
  }
};

/// Streaming pcap writer. Throws std::runtime_error on I/O failure
/// (file errors are exceptional; packet content is not).
class PcapWriter {
 public:
  /// Creates/truncates `path`. nanosecond: write the ns magic.
  explicit PcapWriter(const std::string& path, bool nanosecond = false,
                      std::uint32_t snaplen = 65'535);
  ~PcapWriter();

  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;
  PcapWriter(PcapWriter&&) noexcept;
  PcapWriter& operator=(PcapWriter&&) noexcept;

  /// Append one frame with the given timestamp (seconds + fractional
  /// part in the file's resolution). Frames longer than snaplen are
  /// truncated on disk with orig_len preserved, like real captures.
  void write(std::int64_t ts_sec, std::uint32_t ts_frac,
             std::span<const std::uint8_t> frame);

  /// Flush and close; called by the destructor if not done explicitly.
  void close();

  [[nodiscard]] std::uint64_t records_written() const noexcept { return count_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::uint64_t count_ = 0;
};

/// Streaming pcap reader.
class PcapReader {
 public:
  /// Opens and validates the global header. Throws std::runtime_error
  /// if the file is missing or not a pcap.
  explicit PcapReader(const std::string& path);
  ~PcapReader();

  PcapReader(const PcapReader&) = delete;
  PcapReader& operator=(const PcapReader&) = delete;
  PcapReader(PcapReader&&) noexcept;
  PcapReader& operator=(PcapReader&&) noexcept;

  /// Next record, or nullopt at clean EOF. A record truncated by an
  /// interrupted capture also ends the stream (common in practice);
  /// truncated() reports whether that happened.
  [[nodiscard]] std::optional<PcapRecord> next();

  [[nodiscard]] bool nanosecond() const noexcept;
  [[nodiscard]] std::uint32_t link_type() const noexcept;
  [[nodiscard]] bool truncated() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace v6sonar::wire
