// Whole-frame building and parsing.
//
// FrameBuilder assembles a valid Ethernet/IPv6/{TCP,UDP,ICMPv6} frame
// with correct lengths and checksums; PacketSummary is the decoded
// five-tuple view the telescope and MAWI pipelines consume.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/ipv6.hpp"
#include "wire/headers.hpp"

namespace v6sonar::wire {

/// The decoded fields every analysis in the paper needs. `length` is
/// the full on-wire frame length (the FH detector's packet-length
/// entropy runs over it).
struct PacketSummary {
  net::Ipv6Address src;
  net::Ipv6Address dst;
  IpProto proto = IpProto::kTcp;
  std::uint16_t src_port = 0;  ///< 0 for ICMPv6
  std::uint16_t dst_port = 0;  ///< ICMPv6: type<<8|code, mirroring common flow tools
  std::uint32_t length = 0;
  std::uint8_t hop_limit = 0;
  std::uint8_t tcp_flags = 0;  ///< 0 unless TCP

  friend bool operator==(const PacketSummary&, const PacketSummary&) = default;
};

/// Parse a full Ethernet frame into a summary. Returns nullopt for
/// non-IPv6 frames, truncated headers, or unsupported transports.
[[nodiscard]] std::optional<PacketSummary> parse_frame(
    std::span<const std::uint8_t> frame) noexcept;

/// Build frames with consistent lengths and valid checksums.
class FrameBuilder {
 public:
  /// TCP probe (SYN by default) with `payload_len` bytes of zero payload.
  [[nodiscard]] static std::vector<std::uint8_t> tcp(const net::Ipv6Address& src,
                                                     const net::Ipv6Address& dst,
                                                     std::uint16_t src_port,
                                                     std::uint16_t dst_port,
                                                     std::uint8_t flags = TcpHeader::kSyn,
                                                     std::size_t payload_len = 0);

  /// UDP datagram with `payload_len` bytes of zero payload.
  [[nodiscard]] static std::vector<std::uint8_t> udp(const net::Ipv6Address& src,
                                                     const net::Ipv6Address& dst,
                                                     std::uint16_t src_port,
                                                     std::uint16_t dst_port,
                                                     std::size_t payload_len = 0);

  /// ICMPv6 echo request with `payload_len` bytes of zero payload.
  [[nodiscard]] static std::vector<std::uint8_t> icmpv6_echo(const net::Ipv6Address& src,
                                                             const net::Ipv6Address& dst,
                                                             std::uint16_t ident,
                                                             std::uint16_t sequence,
                                                             std::size_t payload_len = 0);
};

}  // namespace v6sonar::wire
