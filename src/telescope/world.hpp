// CdnWorld: the full CDN-vantage-point simulation wired together —
// registry, telescope deployment, hitlist, scan-actor cast, artifact
// traffic, firewall capture, and the 5-duplicate artifact filter.
// This is the object benches, tests, and examples instantiate.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/artifact_filter.hpp"
#include "core/detector.hpp"
#include "scanner/cast.hpp"
#include "scanner/hitlist.hpp"
#include "sim/as_registry.hpp"
#include "telescope/artifacts.hpp"
#include "telescope/deployment.hpp"

namespace v6sonar::telescope {

struct WorldConfig {
  std::uint64_t seed = 42;
  DeploymentConfig deployment;
  scanner::Hitlist::Config hitlist;
  ArtifactConfig artifacts;
  scanner::CastConfig cast;
  /// Apply the §2.1 5-duplicate filter before handing records out.
  bool apply_artifact_filter = true;

  /// A reduced world for tests and fast benches: fewer machines,
  /// fewer artifact sources, heavier thinning.
  [[nodiscard]] static WorldConfig small();
};

class CdnWorld {
 public:
  explicit CdnWorld(const WorldConfig& config);

  [[nodiscard]] const sim::AsRegistry& registry() const noexcept { return registry_; }
  [[nodiscard]] const CdnTelescope& telescope() const noexcept { return *telescope_; }
  [[nodiscard]] const scanner::Hitlist& hitlist() const noexcept { return *hitlist_; }
  [[nodiscard]] const std::vector<scanner::ActorMeta>& actors() const noexcept {
    return actors_;
  }
  /// The cast's ASN for a paper rank (0 if absent).
  [[nodiscard]] std::uint32_t asn_of_rank(int rank) const noexcept;

  /// Stream the full 15-month log through `sink` (captured, annotated,
  /// and — unless disabled — artifact-filtered) in time order.
  /// Single-shot: the generators are consumed. `filter_stats`
  /// (optional) receives per-day artifact-filter summaries.
  void run(const std::function<void(const sim::LogRecord&)>& sink,
           core::ArtifactFilter::StatsSink filter_stats = {});

  /// Convenience: run once, feeding detectors at each config, and
  /// return the scan events per config.
  [[nodiscard]] std::vector<std::vector<core::ScanEvent>> run_detectors(
      const std::vector<core::DetectorConfig>& configs);

 private:
  WorldConfig config_;
  sim::AsRegistry registry_;
  std::unique_ptr<CdnTelescope> telescope_;
  std::unique_ptr<scanner::Hitlist> hitlist_;
  std::vector<scanner::ActorMeta> actors_;
  std::vector<std::unique_ptr<sim::RecordStream>> streams_;
  bool consumed_ = false;
};

}  // namespace v6sonar::telescope
