// CDN connection-artifact traffic (§2.1, Appendix A.1).
//
// The telescope's client-facing addresses attract traffic that looks
// scan-like but isn't: SMTP servers falling back to AAAA records when
// a CDN-hosted domain has no MX (TCP/25 retries against many
// machines), hosts retrying ISAKMP/IPsec (UDP/500), and misconfigured
// web clients coupling odd-port probes to ordinary connections. These
// populate the near-origin mass of Fig. 1 and are what the
// 5-duplicate filter exists to remove.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "scanner/targeting.hpp"
#include "sim/as_registry.hpp"
#include "sim/record.hpp"

namespace v6sonar::telescope {

struct ArtifactConfig {
  std::uint64_t seed = 5;
  /// SMTP MX-fallback retry sources (TCP/25, heavy 5-duplicates).
  std::size_t smtp_sources = 600;
  /// ISAKMP/IPsec retry sources (UDP/500, heavy 5-duplicates).
  std::size_t ipsec_sources = 400;
  /// Misconfigured clients: few destinations, few packets each.
  std::size_t misc_clients = 25'000;
  /// Client networks the artifact sources live in.
  std::size_t client_networks = 250;
  std::uint32_t first_asn = 300'000;
};

/// Build the artifact source streams and register the client ISP ASes.
/// `dns_targets` must be the telescope's client-facing addresses (only
/// those attract artifacts).
[[nodiscard]] std::vector<std::unique_ptr<sim::RecordStream>> build_artifacts(
    const ArtifactConfig& config, sim::AsRegistry& registry,
    scanner::TargetList dns_targets);

/// The artifact client address plan: client network k owns 2400:k::/32.
[[nodiscard]] net::Ipv6Prefix client_as_prefix(std::uint32_t k);

}  // namespace v6sonar::telescope
