#include "telescope/deployment.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace v6sonar::telescope {

namespace {

/// CDN deployment address plan: AS j owns 0x2600'0000+j::/32. This
/// region is reserved for the telescope; scanner/artifact ASes are
/// allocated elsewhere (see scanner::Cast and telescope::artifacts).
net::Ipv6Prefix cdn_as_prefix(std::size_t j) {
  const std::uint64_t hi = (0x2600'0000ULL + j) << 32;
  return {net::Ipv6Address{hi, 0}, 32};
}

}  // namespace

CdnTelescope::CdnTelescope(const DeploymentConfig& config, sim::AsRegistry& registry)
    : registry_(&registry) {
  if (config.machines == 0 || config.networks == 0)
    throw std::invalid_argument("CdnTelescope: empty deployment");
  if (config.dns_pair_subset > config.machines)
    throw std::invalid_argument("CdnTelescope: pair subset exceeds machine count");

  util::Xoshiro256 rng(util::derive_seed(config.seed, /*stream=*/0xCD17));

  // Register the CDN ASes. Network sizes are skewed: a few large
  // deployment networks host most machines (matching how CDNs deploy).
  for (std::size_t j = 0; j < config.networks; ++j) {
    sim::AsInfo info;
    info.asn = config.first_asn + static_cast<std::uint32_t>(j);
    info.type = sim::AsType::kCdn;
    info.country = "various";
    info.allocations = {cdn_as_prefix(j)};
    registry.add(std::move(info));
  }
  util::ZipfSampler network_popularity(config.networks, 1.0);

  machines_.reserve(config.machines);
  dns_addresses_.reserve(config.machines);
  all_addresses_.reserve(config.machines * 2);
  dns_set_.reserve(config.machines * 2);
  all_set_.reserve(config.machines * 4);

  for (std::size_t i = 0; i < config.machines; ++i) {
    const std::size_t j = network_popularity.sample(rng);
    const net::Ipv6Prefix as_prefix = cdn_as_prefix(j);

    // Each machine sits in a rack /64: AS /32 + structured site bits
    // (deployments number racks, they don't randomize them — which is
    // exactly why Entropy/IP-style TGAs work against real networks;
    // see bench_tga).
    const std::uint64_t site = rng.below(4'096);
    const net::Ipv6Address base{as_prefix.address().hi() | site, 0};

    // Server IIDs are operator-assigned and structured (low Hamming
    // weight), matching what public hitlists observe: a small host
    // index within the rack /64.
    const std::uint64_t host_index = 1 + rng.below(200);
    Machine m;
    m.asn = config.first_asn + static_cast<std::uint32_t>(j);
    m.client_facing = base.with_iid(host_index);
    // The non-client-facing twin is nearby: within the same /123 most
    // of the time (low-5-bit perturbation), otherwise within the /120.
    if (rng.chance(0.8)) {
      m.non_client_facing = base.with_iid(host_index ^ (1 + rng.below(31)));
    } else {
      m.non_client_facing = m.client_facing.plus(32 + rng.below(220));
    }

    if (all_set_.contains(m.client_facing) || all_set_.contains(m.non_client_facing)) {
      --i;  // rare /64 collision: retry with a fresh site
      continue;
    }
    all_set_.insert(m.client_facing);
    all_set_.insert(m.non_client_facing);
    dns_set_.insert(m.client_facing);
    dns_addresses_.push_back(m.client_facing);
    all_addresses_.push_back(m.client_facing);
    all_addresses_.push_back(m.non_client_facing);
    machines_.push_back(m);
  }

  // The §3.3 pair study uses the subset whose pairs are tightest in
  // address space (within a /123).
  pair_study_.reserve(config.dns_pair_subset);
  for (const auto& m : machines_) {
    if (pair_study_.size() >= config.dns_pair_subset) break;
    if (m.client_facing.common_prefix_len(m.non_client_facing) >= 123)
      pair_study_.push_back(m);
  }
}

bool CdnTelescope::owns(const net::Ipv6Address& a) const noexcept {
  return all_set_.contains(a);
}

bool CdnTelescope::in_dns(const net::Ipv6Address& a) const noexcept {
  return dns_set_.contains(a);
}

bool CdnTelescope::captures(const sim::LogRecord& r) const noexcept {
  if (r.proto == wire::IpProto::kIcmpv6) return false;
  if (r.proto == wire::IpProto::kTcp && (r.dst_port == 80 || r.dst_port == 443)) return false;
  // Non-global sources (link-local, ULA, loopback, multicast) cannot
  // legitimately arrive over the public internet; real ingest drops
  // them before any accounting.
  if (!net::is_global_unicast(r.src)) return false;
  return owns(r.dst);
}

bool CdnTelescope::capture_and_annotate(sim::LogRecord& r) const noexcept {
  if (!captures(r)) return false;
  r.dst_in_dns = in_dns(r.dst);
  // Generators stamp their ASN; the registry join is the (slower)
  // fallback for externally produced records, e.g. pcap imports.
  if (r.src_asn == 0) r.src_asn = registry_->asn_of(r.src);
  return true;
}

}  // namespace v6sonar::telescope
