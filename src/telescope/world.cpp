#include "telescope/world.hpp"

#include <stdexcept>

#include "sim/merge.hpp"
#include "util/rng.hpp"

namespace v6sonar::telescope {

WorldConfig WorldConfig::small() {
  WorldConfig w;
  w.deployment.machines = 8'000;
  w.deployment.networks = 120;
  w.deployment.dns_pair_subset = 5'000;
  w.hitlist.external_addresses = 5'000;
  w.artifacts.smtp_sources = 60;
  w.artifacts.ipsec_sources = 40;
  w.artifacts.misc_clients = 800;
  w.artifacts.client_networks = 40;
  w.cast.megascanner_thinning = 1.0 / 512.0;
  return w;
}

CdnWorld::CdnWorld(const WorldConfig& config) : config_(config) {
  // Derive sub-seeds so components get independent streams even if the
  // sub-configs share default seeds.
  config_.deployment.seed = util::derive_seed(config_.seed, 1);
  config_.hitlist.seed = util::derive_seed(config_.seed, 2);
  config_.artifacts.seed = util::derive_seed(config_.seed, 3);
  config_.cast.seed = util::derive_seed(config_.seed, 4);

  telescope_ = std::make_unique<CdnTelescope>(config_.deployment, registry_);
  hitlist_ = std::make_unique<scanner::Hitlist>(config_.hitlist, telescope_->dns_addresses());

  auto dns = std::make_shared<const std::vector<net::Ipv6Address>>(telescope_->dns_addresses());
  auto all = std::make_shared<const std::vector<net::Ipv6Address>>(telescope_->all_addresses());

  auto cast = scanner::build_cast(config_.cast, registry_, dns, all, *hitlist_);
  actors_ = std::move(cast.actors);
  streams_ = std::move(cast.streams);

  auto artifacts = build_artifacts(config_.artifacts, registry_, dns);
  for (auto& s : artifacts) streams_.push_back(std::move(s));
}

std::uint32_t CdnWorld::asn_of_rank(int rank) const noexcept {
  for (const auto& a : actors_)
    if (a.paper_rank == rank) return a.asn;
  return 0;
}

void CdnWorld::run(const std::function<void(const sim::LogRecord&)>& sink,
                   core::ArtifactFilter::StatsSink filter_stats) {
  if (consumed_)
    throw std::logic_error("CdnWorld::run: generators already consumed; build a new world");
  consumed_ = true;

  sim::MergedStream merged(std::move(streams_));
  streams_.clear();

  if (config_.apply_artifact_filter) {
    core::ArtifactFilter filter({}, sink, std::move(filter_stats));
    while (auto r = merged.next()) {
      if (telescope_->capture_and_annotate(*r)) filter.feed(*r);
    }
    filter.flush();
  } else {
    while (auto r = merged.next()) {
      if (telescope_->capture_and_annotate(*r)) sink(*r);
    }
  }
}

std::vector<std::vector<core::ScanEvent>> CdnWorld::run_detectors(
    const std::vector<core::DetectorConfig>& configs) {
  std::vector<std::vector<core::ScanEvent>> results(configs.size());
  std::vector<std::unique_ptr<core::ScanDetector>> detectors;
  detectors.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    detectors.push_back(std::make_unique<core::ScanDetector>(
        configs[i],
        [&results, i](core::ScanEvent&& ev) { results[i].push_back(std::move(ev)); }));
  }
  run([&](const sim::LogRecord& r) {
    for (auto& d : detectors) d->feed(r);
  });
  for (auto& d : detectors) d->flush();
  return results;
}

}  // namespace v6sonar::telescope
