#include "telescope/artifacts.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/timebase.hpp"

namespace v6sonar::telescope {

namespace {

using net::Ipv6Address;
using sim::TimeUs;

constexpr TimeUs kStart = sim::us_from_seconds(util::kWindowStart);
constexpr TimeUs kEnd = sim::us_from_seconds(util::kWindowEnd);

/// One artifact source: a /64 with a handful of /128s that repeatedly
/// contacts a fixed destination set on one service port, for a span of
/// days. Packets are emitted day by day at jittered times (sorted).
class ArtifactSource final : public sim::RecordStream {
 public:
  struct Params {
    std::uint64_t seed = 0;
    Ipv6Address src_base;          ///< the source /64 (IID bits free)
    int n128 = 1;                  ///< distinct source addresses used
    std::uint32_t asn = 0;
    wire::IpProto proto = wire::IpProto::kTcp;
    std::uint16_t port = 25;
    std::vector<Ipv6Address> destinations;  ///< the CDN machines hit
    double repeats_per_day = 12;   ///< mean packets per destination per day
    TimeUs first_day = kStart;
    int active_days = 5;
    bool random_iid = true;        ///< SLAAC-like random IIDs (vs low ones)
  };

  explicit ArtifactSource(Params p) : p_(std::move(p)), rng_(p_.seed) {
    if (p_.destinations.empty()) throw std::invalid_argument("ArtifactSource: no destinations");
    if (p_.n128 < 1) throw std::invalid_argument("ArtifactSource: n128 must be >= 1");
    srcs_.reserve(static_cast<std::size_t>(p_.n128));
    for (int i = 0; i < p_.n128; ++i)
      srcs_.push_back(p_.src_base.with_iid(p_.random_iid ? rng_() : 0x10 + static_cast<std::uint64_t>(i)));
    begin_day();
  }

  // Retries follow real MTA/IKE behaviour: each destination is revisited
  // once per round, rounds spread evenly through the day. Iterating
  // (round, destination) in order yields monotone timestamps with O(1)
  // state — important because thousands of artifact streams are alive
  // inside one merge.
  [[nodiscard]] std::optional<sim::LogRecord> next() override {
    while (true) {
      if (day_ >= p_.active_days) return std::nullopt;
      if (round_ >= rounds_today_) {
        ++day_;
        begin_day();
        continue;
      }
      const TimeUs day_start = p_.first_day + day_ * 86'400LL * sim::kUsPerSecond;
      if (day_start >= kEnd) return std::nullopt;
      const std::size_t n = p_.destinations.size();
      const TimeUs slot = 86'400LL * sim::kUsPerSecond / rounds_today_;
      const TimeUs sub = slot / static_cast<TimeUs>(n);
      sim::LogRecord r;
      r.ts_us = day_start + round_ * slot + static_cast<TimeUs>(dst_pos_) * sub +
                static_cast<TimeUs>(rng_.below(static_cast<std::uint64_t>(sub > 1 ? sub : 1)));
      r.src = srcs_[rng_.below(srcs_.size())];
      r.dst = p_.destinations[dst_pos_];
      r.proto = p_.proto;
      r.src_port = static_cast<std::uint16_t>(32'768 + rng_.below(28'000));
      r.dst_port = p_.port;
      // Artifact frames vary in size (real handshakes and payloads),
      // unlike the constant-size scan probes.
      r.frame_len = static_cast<std::uint16_t>(74 + rng_.below(400));
      r.src_asn = p_.asn;
      if (++dst_pos_ >= n) {
        dst_pos_ = 0;
        ++round_;
      }
      return r;
    }
  }

 private:
  void begin_day() {
    // Rounds per day: Poisson-ish around repeats_per_day, at least 1.
    const double jitter = 0.5 + rng_.unit();
    rounds_today_ = std::max<TimeUs>(1, static_cast<TimeUs>(p_.repeats_per_day * jitter));
    round_ = 0;
    dst_pos_ = 0;
  }

  Params p_;
  util::Xoshiro256 rng_;
  std::vector<Ipv6Address> srcs_;
  int day_ = 0;
  TimeUs rounds_today_ = 1;
  TimeUs round_ = 0;
  std::size_t dst_pos_ = 0;
};

}  // namespace

net::Ipv6Prefix client_as_prefix(std::uint32_t k) {
  const std::uint64_t hi = (0x2400'0000ULL + k) << 32;
  return {Ipv6Address{hi, 0}, 32};
}

std::vector<std::unique_ptr<sim::RecordStream>> build_artifacts(
    const ArtifactConfig& cfg, sim::AsRegistry& registry, scanner::TargetList dns) {
  if (!dns || dns->empty()) throw std::invalid_argument("build_artifacts: empty target list");

  util::Xoshiro256 rng(util::derive_seed(cfg.seed, 0xA271FAC7));

  for (std::uint32_t k = 0; k < cfg.client_networks; ++k) {
    sim::AsInfo info;
    info.asn = cfg.first_asn + k;
    info.type = sim::AsType::kIsp;
    info.country = "various";
    info.allocations = {client_as_prefix(k)};
    registry.add(std::move(info));
  }

  auto src_base = [&](std::uint32_t k) {
    return Ipv6Address{client_as_prefix(k).address().hi() | rng.below(0x1'0000'0000ULL), 0};
  };
  auto pick_destinations = [&](std::size_t n) {
    std::vector<Ipv6Address> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back((*dns)[rng.below(dns->size())]);
    return out;
  };
  const std::int64_t window_days = (kEnd - kStart) / (86'400LL * sim::kUsPerSecond);

  std::vector<std::unique_ptr<sim::RecordStream>> out;
  out.reserve(cfg.smtp_sources + cfg.ipsec_sources + cfg.misc_clients);

  for (std::size_t i = 0; i < cfg.smtp_sources; ++i) {
    ArtifactSource::Params p;
    p.seed = util::derive_seed(cfg.seed, 0x511D0 + i);
    p.asn = cfg.first_asn + static_cast<std::uint32_t>(rng.below(cfg.client_networks));
    p.src_base = src_base(p.asn - cfg.first_asn);
    p.n128 = 1 + static_cast<int>(rng.below(3));
    p.proto = wire::IpProto::kTcp;
    p.port = 25;
    // The CDN mapping process spreads one failing domain across many
    // machines over time.
    p.destinations = pick_destinations(20 + rng.below(180));
    // Real MTA retry schedules revisit every 15-60 minutes; well above
    // the 5-duplicate bar even on the slowest days.
    p.repeats_per_day = 20 + rng.unit() * 40;
    p.first_day = kStart + static_cast<TimeUs>(rng.below(static_cast<std::uint64_t>(window_days))) *
                               86'400LL * sim::kUsPerSecond;
    p.active_days = 2 + static_cast<int>(rng.below(9));
    out.push_back(std::make_unique<ArtifactSource>(std::move(p)));
  }

  for (std::size_t i = 0; i < cfg.ipsec_sources; ++i) {
    ArtifactSource::Params p;
    p.seed = util::derive_seed(cfg.seed, 0x1b5ec0 + i);
    p.asn = cfg.first_asn + static_cast<std::uint32_t>(rng.below(cfg.client_networks));
    p.src_base = src_base(p.asn - cfg.first_asn);
    p.n128 = 1 + static_cast<int>(rng.below(2));
    p.proto = wire::IpProto::kUdp;
    p.port = 500;
    p.destinations = pick_destinations(10 + rng.below(150));
    p.repeats_per_day = 16 + rng.unit() * 30;
    p.first_day = kStart + static_cast<TimeUs>(rng.below(static_cast<std::uint64_t>(window_days))) *
                               86'400LL * sim::kUsPerSecond;
    p.active_days = 2 + static_cast<int>(rng.below(7));
    out.push_back(std::make_unique<ArtifactSource>(std::move(p)));
  }

  // Misconfigured clients: 1-5 destinations, a couple of packets,
  // one or two days; Fig. 1's near-origin mass.
  const std::uint16_t odd_ports[] = {137, 139, 445, 1900, 3702, 5060, 5355};
  for (std::size_t i = 0; i < cfg.misc_clients; ++i) {
    ArtifactSource::Params p;
    p.seed = util::derive_seed(cfg.seed, 0x3175C0 + i);
    p.asn = cfg.first_asn + static_cast<std::uint32_t>(rng.below(cfg.client_networks));
    p.src_base = src_base(p.asn - cfg.first_asn);
    p.n128 = 1;
    p.proto = rng.chance(0.5) ? wire::IpProto::kUdp : wire::IpProto::kTcp;
    p.port = odd_ports[rng.below(std::size(odd_ports))];
    p.destinations = pick_destinations(1 + rng.below(5));
    p.repeats_per_day = 1 + rng.unit() * 2;
    p.first_day = kStart + static_cast<TimeUs>(rng.below(static_cast<std::uint64_t>(window_days))) *
                               86'400LL * sim::kUsPerSecond;
    p.active_days = 1 + static_cast<int>(rng.below(2));
    out.push_back(std::make_unique<ArtifactSource>(std::move(p)));
  }

  return out;
}

}  // namespace v6sonar::telescope
