// CDN telescope deployment model.
//
// Simulates the paper's vantage point (§2.1): ~230,000 machines in
// 700+ ASes, each machine holding a client-facing (DNS-exposed) IPv6
// address and a non-client-facing address nearby in address space
// (often within the same /123), plus the firewall capture rule
// (unsolicited packets except TCP/80, TCP/443, and ICMPv6).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "net/ipv6.hpp"
#include "net/prefix.hpp"
#include "sim/as_registry.hpp"
#include "sim/record.hpp"

namespace v6sonar::telescope {

struct DeploymentConfig {
  std::uint64_t seed = 1;
  std::size_t machines = 230'000;
  std::size_t networks = 700;        ///< CDN ASes hosting machines
  std::size_t dns_pair_subset = 160'000;  ///< §3.3 in/not-in-DNS pair study size
  std::uint32_t first_asn = 64'512;  ///< CDN AS numbers start here (private range)
};

/// One CDN machine's address pair.
struct Machine {
  net::Ipv6Address client_facing;      ///< returned in DNS responses
  net::Ipv6Address non_client_facing;  ///< never in DNS; close in address space
  std::uint32_t asn = 0;
};

class CdnTelescope {
 public:
  /// Builds the deployment and registers the CDN ASes in `registry`.
  /// The registry must outlive the telescope.
  CdnTelescope(const DeploymentConfig& config, sim::AsRegistry& registry);

  [[nodiscard]] const std::vector<Machine>& machines() const noexcept { return machines_; }
  [[nodiscard]] std::size_t machine_count() const noexcept { return machines_.size(); }

  /// Is this address one of ours (either kind)?
  [[nodiscard]] bool owns(const net::Ipv6Address& a) const noexcept;

  /// Is this address DNS-exposed (client-facing)?
  [[nodiscard]] bool in_dns(const net::Ipv6Address& a) const noexcept;

  /// Firewall capture predicate (§2.1): true if an unsolicited packet
  /// to this destination/port/proto would be logged. TCP/80 and
  /// TCP/443 serve production traffic and are not logged; ICMPv6 is
  /// not collected.
  [[nodiscard]] bool captures(const sim::LogRecord& r) const noexcept;

  /// Annotate a record with ground truth (dst_in_dns, src_asn) using
  /// the shared registry. Returns false if the destination is not a
  /// telescope address or the firewall would not log it.
  [[nodiscard]] bool capture_and_annotate(sim::LogRecord& r) const noexcept;

  /// All client-facing addresses — what a DNS-based target strategy
  /// or a public hitlist would learn.
  [[nodiscard]] const std::vector<net::Ipv6Address>& dns_addresses() const noexcept {
    return dns_addresses_;
  }

  /// All addresses (client- and non-client-facing), the full target
  /// universe an omniscient scanner could hit.
  [[nodiscard]] const std::vector<net::Ipv6Address>& all_addresses() const noexcept {
    return all_addresses_;
  }

  /// The §3.3 pair-study subset: machines whose (in-DNS, not-in-DNS)
  /// address pair lies within a small window (/123), enabling the
  /// "nearby probe" inference.
  [[nodiscard]] const std::vector<Machine>& dns_pair_study() const noexcept {
    return pair_study_;
  }

  CdnTelescope(const CdnTelescope&) = delete;
  CdnTelescope& operator=(const CdnTelescope&) = delete;

 private:
  const sim::AsRegistry* registry_;
  std::vector<Machine> machines_;
  std::vector<Machine> pair_study_;
  std::vector<net::Ipv6Address> dns_addresses_;
  std::vector<net::Ipv6Address> all_addresses_;
  std::unordered_set<net::Ipv6Address> dns_set_;
  std::unordered_set<net::Ipv6Address> all_set_;
};

}  // namespace v6sonar::telescope
