// IPv6 prefix (CIDR) value type.
#pragma once

#include <compare>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "net/ipv6.hpp"

namespace v6sonar::net {

/// An IPv6 prefix: a network address plus a prefix length in [0, 128].
/// Always stored canonically (host bits zero), so equality is semantic.
class Ipv6Prefix {
 public:
  /// "::/0".
  constexpr Ipv6Prefix() noexcept = default;

  /// Canonicalizes: host bits of `addr` below `len` are cleared.
  /// len is clamped to [0, 128].
  constexpr Ipv6Prefix(const Ipv6Address& addr, int len) noexcept
      : len_(len < 0 ? 0 : (len > 128 ? 128 : len)), addr_(addr.masked(len_)) {}

  /// Parse "2001:db8::/32". Returns nullopt on malformed input.
  [[nodiscard]] static std::optional<Ipv6Prefix> parse(std::string_view text) noexcept;

  /// Parse or throw std::invalid_argument.
  [[nodiscard]] static Ipv6Prefix parse_or_throw(std::string_view text);

  [[nodiscard]] constexpr const Ipv6Address& address() const noexcept { return addr_; }
  [[nodiscard]] constexpr int length() const noexcept { return len_; }

  /// Does this prefix cover the address?
  [[nodiscard]] constexpr bool contains(const Ipv6Address& a) const noexcept {
    return a.masked(len_) == addr_;
  }

  /// Does this prefix cover the other (equal or more-specific) prefix?
  [[nodiscard]] constexpr bool contains(const Ipv6Prefix& o) const noexcept {
    return o.len_ >= len_ && contains(o.addr_);
  }

  /// The first and last addresses covered.
  [[nodiscard]] constexpr Ipv6Address first() const noexcept { return addr_; }
  [[nodiscard]] constexpr Ipv6Address last() const noexcept {
    if (len_ == 0) return {~0ULL, ~0ULL};
    if (len_ >= 128) return addr_;
    if (len_ <= 64) {
      const std::uint64_t m = len_ == 64 ? 0 : (~0ULL >> len_);
      return {addr_.hi() | m, ~0ULL};
    }
    return {addr_.hi(), addr_.lo() | (~0ULL >> (len_ - 64))};
  }

  /// This prefix re-expressed at a shorter (less specific) length.
  /// new_len must be <= length().
  [[nodiscard]] constexpr Ipv6Prefix parent(int new_len) const noexcept {
    return {addr_, new_len < len_ ? new_len : len_};
  }

  /// "2001:db8::/32".
  [[nodiscard]] std::string to_string() const;

  /// Ordered by network address, then by length (shorter first) — the
  /// natural address-space ordering.
  friend constexpr std::strong_ordering operator<=>(const Ipv6Prefix& a,
                                                    const Ipv6Prefix& b) noexcept {
    if (const auto c = a.addr_ <=> b.addr_; c != 0) return c;
    return a.len_ <=> b.len_;
  }
  friend constexpr bool operator==(const Ipv6Prefix&, const Ipv6Prefix&) noexcept = default;

 private:
  int len_ = 0;  // declared before addr_: the constructor masks with it
  Ipv6Address addr_;
};

}  // namespace v6sonar::net

template <>
struct std::hash<v6sonar::net::Ipv6Prefix> {
  std::size_t operator()(const v6sonar::net::Ipv6Prefix& p) const noexcept {
    return std::hash<v6sonar::net::Ipv6Address>{}(p.address()) ^
           (static_cast<std::size_t>(p.length()) * 0x9e3779b97f4a7c15ULL);
  }
};
