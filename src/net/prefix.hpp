// IPv6 prefix (CIDR) value type.
#pragma once

#include <compare>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "net/ipv6.hpp"

namespace v6sonar::net {

/// An IPv6 prefix: a network address plus a prefix length in [0, 128].
/// Always stored canonically (host bits zero), so equality is semantic.
class Ipv6Prefix {
 public:
  /// "::/0".
  constexpr Ipv6Prefix() noexcept = default;

  /// Canonicalizes: host bits of `addr` below `len` are cleared.
  /// len is clamped to [0, 128].
  constexpr Ipv6Prefix(const Ipv6Address& addr, int len) noexcept
      : len_(len < 0 ? 0 : (len > 128 ? 128 : len)), addr_(addr.masked(len_)) {}

  /// Construct from an address that is already masked to `len` bits,
  /// skipping re-canonicalization. Precondition (caller-checked):
  /// addr.masked(len) == addr and len in [0, 128]. The batch
  /// key-derivation path uses this after masking with a precomputed
  /// PrefixMask.
  [[nodiscard]] static constexpr Ipv6Prefix from_masked(const Ipv6Address& addr,
                                                        int len) noexcept {
    Ipv6Prefix p;
    p.len_ = len;
    p.addr_ = addr;
    return p;
  }

  /// Parse "2001:db8::/32". Returns nullopt on malformed input.
  [[nodiscard]] static std::optional<Ipv6Prefix> parse(std::string_view text) noexcept;

  /// Parse or throw std::invalid_argument.
  [[nodiscard]] static Ipv6Prefix parse_or_throw(std::string_view text);

  [[nodiscard]] constexpr const Ipv6Address& address() const noexcept { return addr_; }
  [[nodiscard]] constexpr int length() const noexcept { return len_; }

  /// Does this prefix cover the address?
  [[nodiscard]] constexpr bool contains(const Ipv6Address& a) const noexcept {
    return a.masked(len_) == addr_;
  }

  /// Does this prefix cover the other (equal or more-specific) prefix?
  [[nodiscard]] constexpr bool contains(const Ipv6Prefix& o) const noexcept {
    return o.len_ >= len_ && contains(o.addr_);
  }

  /// The first and last addresses covered.
  [[nodiscard]] constexpr Ipv6Address first() const noexcept { return addr_; }
  [[nodiscard]] constexpr Ipv6Address last() const noexcept {
    if (len_ == 0) return {~0ULL, ~0ULL};
    if (len_ >= 128) return addr_;
    if (len_ <= 64) {
      const std::uint64_t m = len_ == 64 ? 0 : (~0ULL >> len_);
      return {addr_.hi() | m, ~0ULL};
    }
    return {addr_.hi(), addr_.lo() | (~0ULL >> (len_ - 64))};
  }

  /// This prefix re-expressed at a shorter (less specific) length.
  /// new_len must be <= length().
  [[nodiscard]] constexpr Ipv6Prefix parent(int new_len) const noexcept {
    return {addr_, new_len < len_ ? new_len : len_};
  }

  /// "2001:db8::/32".
  [[nodiscard]] std::string to_string() const;

  /// Ordered by network address, then by length (shorter first) — the
  /// natural address-space ordering.
  friend constexpr std::strong_ordering operator<=>(const Ipv6Prefix& a,
                                                    const Ipv6Prefix& b) noexcept {
    if (const auto c = a.addr_ <=> b.addr_; c != 0) return c;
    return a.len_ <=> b.len_;
  }
  friend constexpr bool operator==(const Ipv6Prefix&, const Ipv6Prefix&) noexcept = default;

 private:
  int len_ = 0;  // declared before addr_: the constructor masks with it
  Ipv6Address addr_;
};

/// Multiplier lanes and finalizer of the shared prefix hash. Each of
/// the three inputs (hi word, lo word, salt) gets its own odd
/// multiplier before the xor-combine so sibling prefixes — same
/// address, different length, or one flipped host word — land far
/// apart, then a SplitMix64 finalizer avalanches the result. The flat
/// containers take both the probe start (low bits) and the control
/// tag (top 7 bits) from this value, so full avalanche is load-bearing,
/// not cosmetic.
inline constexpr std::uint64_t kPrefixHashHiMul = 0x9e3779b97f4a7c15ULL;
inline constexpr std::uint64_t kPrefixHashLoMul = 0xc2b2ae3d27d4eb4fULL;
inline constexpr std::uint64_t kPrefixHashSaltMul = 0x165667b19e3779f9ULL;

[[nodiscard]] constexpr std::uint64_t prefix_hash_finish(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// The shared prefix hash: std::hash<Ipv6Prefix> and the batch
/// PrefixKeyDeriver both compute exactly this, so precomputed-hash
/// container entry points interoperate with the plain ones on the
/// same table.
[[nodiscard]] constexpr std::uint64_t prefix_hash_mix(std::uint64_t hi, std::uint64_t lo,
                                                      std::uint64_t salt) noexcept {
  return prefix_hash_finish(hi * kPrefixHashHiMul ^ lo * kPrefixHashLoMul ^
                            salt * kPrefixHashSaltMul);
}

/// Derives the aggregation key (source prefix at a fixed length) and
/// its hash for a stream of addresses, hashing each record once. The
/// mask words are precomputed per level; for /64-and-shorter levels
/// the low word masks to zero, so its multiplier lane is skipped and
/// coarse aggregation (/64, /48) hashes only the high word — the cheap
/// per-level re-mix of the hash-once pipeline. The hash is
/// bit-identical to std::hash<Ipv6Prefix> of the produced key.
class PrefixKeyDeriver {
 public:
  struct Derived {
    Ipv6Prefix key;
    std::size_t hash;
  };

  constexpr PrefixKeyDeriver() noexcept : PrefixKeyDeriver(128) {}
  explicit constexpr PrefixKeyDeriver(int len) noexcept
      : len_(len < 0 ? 0 : (len > 128 ? 128 : len)), mask_(prefix_mask(len_)) {}

  [[nodiscard]] constexpr int length() const noexcept { return len_; }

  [[nodiscard]] constexpr Derived operator()(const Ipv6Address& a) const noexcept {
    const std::uint64_t hi = a.hi() & mask_.hi;
    std::uint64_t lo = 0;
    std::uint64_t z = hi * kPrefixHashHiMul ^
                      static_cast<std::uint64_t>(len_) * kPrefixHashSaltMul;
    if (mask_.lo != 0) {  // /65 and longer: the low word carries key bits
      lo = a.lo() & mask_.lo;
      z ^= lo * kPrefixHashLoMul;
    }
    return {Ipv6Prefix::from_masked({hi, lo}, len_),
            static_cast<std::size_t>(prefix_hash_finish(z))};
  }

 private:
  int len_;
  PrefixMask mask_;
};

}  // namespace v6sonar::net

template <>
struct std::hash<v6sonar::net::Ipv6Prefix> {
  std::size_t operator()(const v6sonar::net::Ipv6Prefix& p) const noexcept {
    return static_cast<std::size_t>(v6sonar::net::prefix_hash_mix(
        p.address().hi(), p.address().lo(), static_cast<std::uint64_t>(p.length())));
  }
};
