// IPv6 address value type.
//
// A 128-bit address held as two 64-bit words, with total ordering,
// hashing, bit manipulation, and from-scratch RFC 4291 parsing /
// RFC 5952 canonical formatting. No OS networking headers are used so
// the type behaves identically everywhere (and in constexpr contexts).
#pragma once

#include <array>
#include <bit>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace v6sonar::net {

/// The two 64-bit mask words selecting the first `len` bits of an
/// address. Precomputable once per aggregation level, so batch
/// consumers mask a record with two ANDs instead of re-deriving the
/// masks per call (see PrefixKeyDeriver in net/prefix.hpp).
struct PrefixMask {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
};

/// Masks for a /len prefix; len is clamped to [0, 128].
[[nodiscard]] constexpr PrefixMask prefix_mask(int len) noexcept {
  if (len <= 0) return {};
  if (len >= 128) return {~0ULL, ~0ULL};
  if (len <= 64) return {len == 64 ? ~0ULL : ~(~0ULL >> len), 0};
  return {~0ULL, ~(~0ULL >> (len - 64))};
}

class Ipv6Address {
 public:
  /// The unspecified address "::".
  constexpr Ipv6Address() noexcept = default;

  /// From the two big-endian 64-bit halves: hi = bits 127..64 (network
  /// prefix side), lo = bits 63..0 (interface identifier side).
  constexpr Ipv6Address(std::uint64_t hi, std::uint64_t lo) noexcept : hi_(hi), lo_(lo) {}

  /// From 16 bytes in network byte order.
  [[nodiscard]] static constexpr Ipv6Address from_bytes(
      const std::array<std::uint8_t, 16>& b) noexcept {
    std::uint64_t hi = 0, lo = 0;
    for (int i = 0; i < 8; ++i) hi = hi << 8 | b[static_cast<std::size_t>(i)];
    for (int i = 8; i < 16; ++i) lo = lo << 8 | b[static_cast<std::size_t>(i)];
    return {hi, lo};
  }

  /// Parse any RFC 4291 textual form ("::", "2001:db8::1",
  /// "::ffff:192.0.2.1", full 8-group form). Returns nullopt on
  /// malformed input; never throws.
  [[nodiscard]] static std::optional<Ipv6Address> parse(std::string_view text) noexcept;

  /// Parse or throw std::invalid_argument — for literals in configs/tests.
  [[nodiscard]] static Ipv6Address parse_or_throw(std::string_view text);

  [[nodiscard]] constexpr std::uint64_t hi() const noexcept { return hi_; }
  [[nodiscard]] constexpr std::uint64_t lo() const noexcept { return lo_; }

  [[nodiscard]] constexpr std::array<std::uint8_t, 16> bytes() const noexcept {
    std::array<std::uint8_t, 16> b{};
    for (int i = 0; i < 8; ++i)
      b[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(hi_ >> (56 - 8 * i));
    for (int i = 0; i < 8; ++i)
      b[static_cast<std::size_t>(8 + i)] = static_cast<std::uint8_t>(lo_ >> (56 - 8 * i));
    return b;
  }

  /// The sixteen-bit group at index 0..7 (group 0 is the leftmost).
  [[nodiscard]] constexpr std::uint16_t group(int i) const noexcept {
    const std::uint64_t w = i < 4 ? hi_ : lo_;
    const int shift = 48 - 16 * (i & 3);
    return static_cast<std::uint16_t>(w >> shift);
  }

  /// Bit at position `pos`, where pos 0 is the most significant bit
  /// (leftmost / network side). pos must be in [0, 128).
  [[nodiscard]] constexpr bool bit(int pos) const noexcept {
    return pos < 64 ? (hi_ >> (63 - pos)) & 1 : (lo_ >> (127 - pos)) & 1;
  }

  /// Copy with bit `pos` set to `value` (pos as in bit()).
  [[nodiscard]] constexpr Ipv6Address with_bit(int pos, bool value) const noexcept {
    Ipv6Address r = *this;
    if (pos < 64) {
      const std::uint64_t m = 1ULL << (63 - pos);
      r.hi_ = value ? r.hi_ | m : r.hi_ & ~m;
    } else {
      const std::uint64_t m = 1ULL << (127 - pos);
      r.lo_ = value ? r.lo_ | m : r.lo_ & ~m;
    }
    return r;
  }

  /// Address with all bits below the first `len` bits cleared
  /// (the network address for a /len prefix). len in [0, 128].
  [[nodiscard]] constexpr Ipv6Address masked(int len) const noexcept {
    const PrefixMask m = prefix_mask(len);
    return {hi_ & m.hi, lo_ & m.lo};
  }

  /// Length of the common prefix with another address, in bits [0,128].
  [[nodiscard]] constexpr int common_prefix_len(const Ipv6Address& o) const noexcept {
    if (hi_ != o.hi_) return countl_zero64(hi_ ^ o.hi_);
    if (lo_ != o.lo_) return 64 + countl_zero64(lo_ ^ o.lo_);
    return 128;
  }

  /// Number of 1-bits in the whole address.
  [[nodiscard]] constexpr int popcount() const noexcept {
    return popcount64(hi_) + popcount64(lo_);
  }

  /// Hamming weight of the interface identifier (lowest 64 bits) —
  /// the address-randomness indicator used in §4 / Fig. 7.
  [[nodiscard]] constexpr int iid_hamming_weight() const noexcept { return popcount64(lo_); }

  /// Arithmetic: address + offset (wraps mod 2^128). Used by target
  /// generators walking nearby addresses.
  [[nodiscard]] constexpr Ipv6Address plus(std::uint64_t offset) const noexcept {
    const std::uint64_t new_lo = lo_ + offset;
    return {new_lo < lo_ ? hi_ + 1 : hi_, new_lo};
  }

  /// Bitwise OR of the low 64 bits with an IID value.
  [[nodiscard]] constexpr Ipv6Address with_iid(std::uint64_t iid) const noexcept {
    return {hi_, iid};
  }

  /// RFC 5952 canonical text: lowercase hex, longest zero-run
  /// compressed (leftmost on tie, never a single group).
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Ipv6Address&, const Ipv6Address&) noexcept = default;

 private:
  [[nodiscard]] static constexpr int countl_zero64(std::uint64_t v) noexcept {
    return std::countl_zero(v);
  }
  [[nodiscard]] static constexpr int popcount64(std::uint64_t v) noexcept {
    return std::popcount(v);
  }

  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;
};

/// RFC 4291 address scopes — telescope ingest uses this to discard
/// traffic that cannot legitimately arrive over the public internet
/// (link-local, loopback, unique-local sources).
enum class AddressScope {
  kUnspecified,  ///< ::
  kLoopback,     ///< ::1
  kLinkLocal,    ///< fe80::/10
  kUniqueLocal,  ///< fc00::/7
  kMulticast,    ///< ff00::/8
  kGlobal,       ///< everything else
};

[[nodiscard]] constexpr AddressScope address_scope(const Ipv6Address& a) noexcept {
  if (a.hi() == 0 && a.lo() == 0) return AddressScope::kUnspecified;
  if (a.hi() == 0 && a.lo() == 1) return AddressScope::kLoopback;
  const auto top10 = static_cast<std::uint16_t>(a.hi() >> 54);
  if (top10 == 0x3FA) return AddressScope::kLinkLocal;  // fe80::/10
  const auto top8 = static_cast<std::uint8_t>(a.hi() >> 56);
  if ((top8 & 0xFE) == 0xFC) return AddressScope::kUniqueLocal;  // fc00::/7
  if (top8 == 0xFF) return AddressScope::kMulticast;             // ff00::/8
  return AddressScope::kGlobal;
}

/// Is this a plausible public unicast source for telescope traffic?
[[nodiscard]] constexpr bool is_global_unicast(const Ipv6Address& a) noexcept {
  return address_scope(a) == AddressScope::kGlobal;
}

/// 2001:db8::/32 (RFC 3849) — never valid on the wire.
[[nodiscard]] constexpr bool is_documentation(const Ipv6Address& a) noexcept {
  return (a.hi() >> 32) == 0x2001'0db8ULL;
}

}  // namespace v6sonar::net

template <>
struct std::hash<v6sonar::net::Ipv6Address> {
  std::size_t operator()(const v6sonar::net::Ipv6Address& a) const noexcept {
    // Mix the halves; SplitMix-style finalizer for avalanche.
    std::uint64_t z = a.hi() ^ (a.lo() * 0x9e3779b97f4a7c15ULL + 0xbf58476d1ce4e5b9ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};
