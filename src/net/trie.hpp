// Binary radix (Patricia-style) trie keyed by IPv6 prefixes.
//
// Supports exact insert/lookup, longest-prefix match, and subtree
// visitation. Used for AS attribution (prefix -> AS), allocation
// tables, and the adaptive-aggregation detector, which needs to ask
// "how many active more-specific prefixes live under this parent?".
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "net/prefix.hpp"

namespace v6sonar::net {

template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() : root_(std::make_unique<Node>()) {}

  /// Insert or overwrite the value at an exact prefix.
  /// Returns a reference to the stored value.
  T& insert(const Ipv6Prefix& p, T value) {
    Node* n = root_.get();
    for (int depth = 0; depth < p.length(); ++depth) {
      auto& child = n->child[p.address().bit(depth) ? 1 : 0];
      if (!child) child = std::make_unique<Node>();
      n = child.get();
    }
    if (!n->value) ++size_;
    n->value = std::move(value);
    return *n->value;
  }

  /// Value stored at exactly this prefix, if any.
  [[nodiscard]] const T* find(const Ipv6Prefix& p) const noexcept {
    const Node* n = descend(p.address(), p.length());
    return n && n->value ? &*n->value : nullptr;
  }

  [[nodiscard]] T* find(const Ipv6Prefix& p) noexcept {
    return const_cast<T*>(std::as_const(*this).find(p));
  }

  /// Longest-prefix match: the most specific stored prefix covering
  /// the address, or nullopt.
  [[nodiscard]] std::optional<std::pair<Ipv6Prefix, const T*>> longest_match(
      const Ipv6Address& a) const noexcept {
    const Node* n = root_.get();
    const Node* best = n->value ? n : nullptr;
    int best_len = 0;
    for (int depth = 0; depth < 128 && n; ++depth) {
      n = n->child[a.bit(depth) ? 1 : 0].get();
      if (n && n->value) {
        best = n;
        best_len = depth + 1;
      }
    }
    if (!best) return std::nullopt;
    return std::pair{Ipv6Prefix{a, best_len}, &*best->value};
  }

  /// Visit every stored (prefix, value) pair under `scope` (inclusive),
  /// in address order.
  template <typename Fn>
  void visit_under(const Ipv6Prefix& scope, Fn&& fn) const {
    const Node* n = descend(scope.address(), scope.length());
    if (n) visit(n, scope.address(), scope.length(), fn);
  }

  /// Visit all stored pairs.
  template <typename Fn>
  void visit_all(Fn&& fn) const {
    visit(root_.get(), Ipv6Address{}, 0, fn);
  }

  /// Number of stored prefixes strictly or loosely under `scope`.
  [[nodiscard]] std::size_t count_under(const Ipv6Prefix& scope) const noexcept {
    std::size_t n = 0;
    visit_under(scope, [&](const Ipv6Prefix&, const T&) { ++n; });
    return n;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  void clear() {
    root_ = std::make_unique<Node>();
    size_ = 0;
  }

 private:
  struct Node {
    std::optional<T> value;
    std::unique_ptr<Node> child[2];
  };

  [[nodiscard]] const Node* descend(const Ipv6Address& a, int len) const noexcept {
    const Node* n = root_.get();
    for (int depth = 0; depth < len && n; ++depth) n = n->child[a.bit(depth) ? 1 : 0].get();
    return n;
  }

  template <typename Fn>
  static void visit(const Node* n, Ipv6Address path, int depth, Fn& fn) {
    if (n->value) fn(Ipv6Prefix{path, depth}, *n->value);
    if (depth >= 128) return;
    if (n->child[0]) visit(n->child[0].get(), path.with_bit(depth, false), depth + 1, fn);
    if (n->child[1]) visit(n->child[1].get(), path.with_bit(depth, true), depth + 1, fn);
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace v6sonar::net
