#include "net/prefix.hpp"

#include <stdexcept>

namespace v6sonar::net {

std::optional<Ipv6Prefix> Ipv6Prefix::parse(std::string_view text) noexcept {
  const std::size_t slash = text.rfind('/');
  if (slash == std::string_view::npos || slash == 0 || slash + 1 >= text.size())
    return std::nullopt;
  const auto addr = Ipv6Address::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  int len = 0;
  for (std::size_t i = slash + 1; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') return std::nullopt;
    len = len * 10 + (c - '0');
    if (len > 128) return std::nullopt;
  }
  if (text.size() - slash - 1 > 3) return std::nullopt;
  return Ipv6Prefix{*addr, len};
}

Ipv6Prefix Ipv6Prefix::parse_or_throw(std::string_view text) {
  auto p = parse(text);
  if (!p) throw std::invalid_argument("invalid IPv6 prefix: " + std::string(text));
  return *p;
}

std::string Ipv6Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(len_);
}

}  // namespace v6sonar::net
