#include "net/ipv6.hpp"

#include <cstdio>
#include <stdexcept>

namespace v6sonar::net {

namespace {

/// Parse up to 4 hex digits; advances pos. Returns nullopt if no hex
/// digit is present at pos.
std::optional<std::uint16_t> parse_hex_group(std::string_view s, std::size_t& pos) noexcept {
  std::uint32_t v = 0;
  std::size_t digits = 0;
  while (pos < s.size() && digits < 4) {
    const char c = s[pos];
    std::uint32_t d;
    if (c >= '0' && c <= '9')
      d = static_cast<std::uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      d = static_cast<std::uint32_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F')
      d = static_cast<std::uint32_t>(c - 'A' + 10);
    else
      break;
    v = v << 4 | d;
    ++pos;
    ++digits;
  }
  if (digits == 0) return std::nullopt;
  return static_cast<std::uint16_t>(v);
}

/// Parse a dotted-quad IPv4 tail ("192.0.2.1") into two 16-bit groups.
std::optional<std::array<std::uint16_t, 2>> parse_ipv4_tail(std::string_view s) noexcept {
  std::array<std::uint32_t, 4> octets{};
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (pos >= s.size() || s[pos] != '.') return std::nullopt;
      ++pos;
    }
    std::uint32_t v = 0;
    std::size_t digits = 0;
    while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9' && digits < 3) {
      v = v * 10 + static_cast<std::uint32_t>(s[pos] - '0');
      ++pos;
      ++digits;
    }
    if (digits == 0 || v > 255) return std::nullopt;
    if (digits > 1 && s[pos - digits] == '0') return std::nullopt;  // no leading zeros
    octets[static_cast<std::size_t>(i)] = v;
  }
  if (pos != s.size()) return std::nullopt;
  return std::array<std::uint16_t, 2>{
      static_cast<std::uint16_t>(octets[0] << 8 | octets[1]),
      static_cast<std::uint16_t>(octets[2] << 8 | octets[3])};
}

}  // namespace

std::optional<Ipv6Address> Ipv6Address::parse(std::string_view text) noexcept {
  if (text.size() < 2 || text.size() > 45) return std::nullopt;

  std::array<std::uint16_t, 8> groups{};
  int n_before = 0;        // groups before "::"
  int n_after = 0;         // groups after "::"
  bool has_gap = false;    // saw "::"
  bool has_v4 = false;     // dotted-quad tail consumed
  std::array<std::uint16_t, 8> before{};
  std::array<std::uint16_t, 8> after{};

  std::size_t pos = 0;

  // Leading "::"?
  if (text.size() >= 2 && text[0] == ':' && text[1] == ':') {
    has_gap = true;
    pos = 2;
  } else if (text[0] == ':') {
    return std::nullopt;  // single leading colon
  }

  auto cur_count = [&]() -> int& { return has_gap ? n_after : n_before; };
  auto cur_array = [&]() -> std::array<std::uint16_t, 8>& { return has_gap ? after : before; };

  while (pos < text.size()) {
    if (cur_count() + (has_gap ? n_before : 0) >= 8) return std::nullopt;

    // An IPv4 tail is possible for the last 32 bits: detect a dot
    // before the next colon.
    const std::size_t rest_start = pos;
    const std::size_t next_colon = text.find(':', pos);
    const std::size_t next_dot = text.find('.', pos);
    if (next_dot != std::string_view::npos &&
        (next_colon == std::string_view::npos || next_dot < next_colon)) {
      const auto v4 = parse_ipv4_tail(text.substr(rest_start));
      if (!v4) return std::nullopt;
      if (cur_count() + 2 > 8) return std::nullopt;
      cur_array()[static_cast<std::size_t>(cur_count()++)] = (*v4)[0];
      cur_array()[static_cast<std::size_t>(cur_count()++)] = (*v4)[1];
      has_v4 = true;
      pos = text.size();
      break;
    }

    const auto g = parse_hex_group(text, pos);
    if (!g) return std::nullopt;
    cur_array()[static_cast<std::size_t>(cur_count()++)] = *g;

    if (pos == text.size()) break;
    if (text[pos] != ':') return std::nullopt;
    ++pos;
    if (pos < text.size() && text[pos] == ':') {
      if (has_gap) return std::nullopt;  // second "::"
      has_gap = true;
      ++pos;
      if (pos == text.size()) break;  // trailing "::"
    } else if (pos == text.size()) {
      return std::nullopt;  // trailing single colon
    }
  }
  (void)has_v4;

  const int total = n_before + n_after;
  if (has_gap) {
    if (total >= 8) return std::nullopt;  // "::" must cover >= 1 group
  } else {
    if (total != 8) return std::nullopt;
  }

  int gi = 0;
  for (int i = 0; i < n_before; ++i) groups[static_cast<std::size_t>(gi++)] = before[static_cast<std::size_t>(i)];
  for (int i = 0; i < 8 - total && has_gap; ++i) groups[static_cast<std::size_t>(gi++)] = 0;
  for (int i = 0; i < n_after; ++i) groups[static_cast<std::size_t>(gi++)] = after[static_cast<std::size_t>(i)];

  std::uint64_t hi = 0, lo = 0;
  for (int i = 0; i < 4; ++i) hi = hi << 16 | groups[static_cast<std::size_t>(i)];
  for (int i = 4; i < 8; ++i) lo = lo << 16 | groups[static_cast<std::size_t>(i)];
  return Ipv6Address{hi, lo};
}

Ipv6Address Ipv6Address::parse_or_throw(std::string_view text) {
  auto a = parse(text);
  if (!a) throw std::invalid_argument("invalid IPv6 address: " + std::string(text));
  return *a;
}

std::string Ipv6Address::to_string() const {
  std::array<std::uint16_t, 8> g{};
  for (int i = 0; i < 8; ++i) g[static_cast<std::size_t>(i)] = group(i);

  // Find the longest run of zero groups (length >= 2, leftmost wins).
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (g[static_cast<std::size_t>(i)] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && g[static_cast<std::size_t>(j)] == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;  // RFC 5952 §4.2.2: never compress one group

  std::string out;
  out.reserve(40);
  char buf[8];
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      if (i == 8) break;
      continue;
    }
    if (i != 0 && !(best_start >= 0 && i == best_start + best_len)) out += ':';
    std::snprintf(buf, sizeof buf, "%x", g[static_cast<std::size_t>(i)]);
    out += buf;
    ++i;
  }
  if (out.empty()) out = "::";
  return out;
}

}  // namespace v6sonar::net
