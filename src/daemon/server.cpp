#include "daemon/server.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/report_render.hpp"
#include "core/adaptive.hpp"
#include "core/event_io.hpp"
#include "core/event_sink.hpp"
#include "core/parallel_pipeline.hpp"
#include "core/state_codec.hpp"
#include "core/streaming_ids.hpp"
#include "daemon/framing.hpp"
#include "daemon/log_tail.hpp"
#include "daemon/protocol.hpp"
#include "daemon/snapshot.hpp"
#include "sim/log_io.hpp"
#include "util/fdio.hpp"
#include "util/metrics.hpp"
#include "util/process_stats.hpp"
#include "util/signal_drain.hpp"
#include "util/state_io.hpp"

namespace v6sonar::daemon {

namespace {

using Clock = std::chrono::steady_clock;

struct ServerMetrics {
  util::metrics::Counter accepted{"daemon.clients.accepted"};
  util::metrics::Counter disconnects{"daemon.clients.disconnects"};
  util::metrics::Counter dropped_timeout{"daemon.clients.dropped_timeout"};
  util::metrics::Counter dropped_overflow{"daemon.clients.dropped_overflow"};
  util::metrics::Counter frames_rx{"daemon.frames.rx"};
  util::metrics::Counter frames_tx{"daemon.frames.tx"};
  util::metrics::Counter frames_malformed{"daemon.frames.malformed"};
  util::metrics::Counter queries{"daemon.queries.served"};
  util::metrics::Histogram query_us{"daemon.queries.us"};
  util::metrics::Counter ingest_records{"daemon.ingest.records"};
  util::metrics::Counter socket_records{"daemon.ingest.socket_records"};
  util::metrics::Counter events_tx{"daemon.subscribe.events_tx"};
  util::metrics::Gauge drain_us{"daemon.drain.duration_us"};
  util::metrics::Counter checkpoints{"daemon.checkpoints.written"};
  util::metrics::Counter reattributions{"daemon.reattribution.passes"};
};

ServerMetrics& server_metrics() {
  static ServerMetrics m;
  return m;
}

/// Multi-producer event mailbox between the pipeline's worker threads
/// and the server thread, with a pipe the poll() loop can wait on.
/// Workers pay one mutex'd push_back; the server swaps the whole
/// vector out — the hot path never waits on a reader.
class EventQueue {
 public:
  EventQueue() {
    int p[2];
    if (::pipe(p) != 0) throw std::runtime_error("daemon: cannot create event pipe");
    rd_.reset(p[0]);
    wr_.reset(p[1]);
    util::set_nonblocking(rd_.get(), true);
    util::set_nonblocking(wr_.get(), true);
  }

  void push(core::ScanEvent&& ev) {
    bool signal = false;
    {
      std::lock_guard lock(mu_);
      items_.push_back(std::move(ev));
      if (!signaled_) {
        signaled_ = true;
        signal = true;
      }
    }
    if (signal) wake();
  }

  /// Make the pipe readable without enqueueing (ingest-error path).
  void wake() noexcept {
    const char b = 1;
    [[maybe_unused]] ssize_t rc = ::write(wr_.get(), &b, 1);
  }

  [[nodiscard]] std::vector<core::ScanEvent> take() {
    // Drain the pipe BEFORE swapping: a byte written after the drain
    // but before the swap is a harmless extra wake-up, while the
    // reverse order could consume a wake whose events we don't take.
    char buf[64];
    while (::read(rd_.get(), buf, sizeof buf) > 0) {
    }
    std::vector<core::ScanEvent> out;
    std::lock_guard lock(mu_);
    out.swap(items_);
    signaled_ = false;
    return out;
  }

  [[nodiscard]] int fd() const noexcept { return rd_.get(); }

 private:
  std::mutex mu_;
  std::vector<core::ScanEvent> items_;
  bool signaled_ = false;
  util::UniqueFd rd_, wr_;
};

/// EventSink that forwards each event into the queue.
class QueueForwarder final : public core::EventSink {
 public:
  explicit QueueForwarder(EventQueue& q) noexcept : q_(&q) {}
  void on_event(core::ScanEvent&& ev) override { q_->push(std::move(ev)); }

 private:
  EventQueue* q_;
};

/// One shard's sink chain: forwarder (copy) then publisher (move).
struct ShardChain {
  QueueForwarder forwarder;
  SnapshotPublisher publisher;
  core::FanOutSink fan;

  ShardChain(EventQueue& q, ShardSnapshotSlot& slot, std::size_t every, std::size_t top)
      : forwarder(q), publisher(slot, every, top) {
    fan.add(forwarder);
    fan.add(publisher);
  }
};

struct Client {
  util::UniqueFd fd;
  FrameDecoder decoder;
  std::string outbuf;
  std::size_t out_pos = 0;
  bool subscribed = false;
  bool closing = false;  ///< flush outbuf, then close
  bool dead = false;
  Clock::time_point last_progress = Clock::now();
};

template <typename... Args>
void appendf(std::string& out, const char* fmt, Args... args) {
  char buf[256];
  const int n = std::snprintf(buf, sizeof buf, fmt, args...);
  if (n > 0)
    out.append(buf, std::min<std::size_t>(static_cast<std::size_t>(n), sizeof buf - 1));
}

}  // namespace

struct Daemon::Impl {
  DaemonOptions opts;

  util::UniqueFd listener;
  util::UniqueFd stop_rd, stop_wr;
  std::atomic<bool> stop_requested{false};

  EventQueue queue;
  SnapshotHub hub;  ///< slots registered by the pipeline's sink factory
  std::vector<std::unique_ptr<ShardChain>> chains;
  std::optional<core::ParallelScanPipeline> pipeline;
  std::optional<LogTailer> tailer;
  std::optional<core::EventWriter> spill;

  std::thread ingest;
  std::mutex ingest_mu;
  std::condition_variable ingest_cv;
  std::vector<sim::LogRecord> pushed_records;  ///< guarded by ingest_mu
  std::atomic<bool> ingest_stop{false};
  std::atomic<bool> ingest_pause{false};  ///< checkpoint quiesce request
  bool ingest_paused = false;             ///< guarded by ingest_mu
  std::atomic<std::uint64_t> ingested{0};
  std::atomic<std::uint64_t> tail_rotations{0}, tail_truncations{0}, tail_records{0};
  std::mutex error_mu;
  std::string ingest_error;  ///< guarded by error_mu

  std::vector<std::unique_ptr<Client>> clients;
  std::vector<core::ScanEvent> slim_events;  ///< blocklist input (server thread)
  std::uint64_t events_seen = 0;
  bool draining = false;

  // Re-attribution control plane (server thread only). With a period
  // set, the blocklist is recomputed on that cadence and kBlocklist
  // serves the cached pass; at 0 every kBlocklist computes on demand.
  std::int64_t period_s = 0;
  Clock::time_point next_pass{};
  std::string cached_blocklist;
  bool blocklist_cached = false;

  // The stop pipe must exist before run() is called: request_stop()
  // may race with startup from another thread, and it reads stop_wr.
  explicit Impl(DaemonOptions o) : opts(std::move(o)), hub(0, opts.top) {
    period_s = opts.reattribution_period_s;
    setup_stop_pipe();
  }

  // ---------------- setup ----------------

  void setup_listener() {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts.socket_path.empty() || opts.socket_path.size() >= sizeof addr.sun_path)
      throw std::runtime_error("daemon: socket path empty or too long: " + opts.socket_path);
    std::memcpy(addr.sun_path, opts.socket_path.c_str(), opts.socket_path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) throw std::runtime_error("daemon: cannot create socket");
    listener.reset(fd);
    ::unlink(opts.socket_path.c_str());  // stale socket from a previous run
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
      throw std::runtime_error("daemon: cannot bind " + opts.socket_path);
    if (::listen(fd, 64) != 0)
      throw std::runtime_error("daemon: cannot listen on " + opts.socket_path);
  }

  void setup_stop_pipe() {
    int p[2];
    if (::pipe(p) != 0) throw std::runtime_error("daemon: cannot create stop pipe");
    stop_rd.reset(p[0]);
    stop_wr.reset(p[1]);
    util::set_nonblocking(stop_rd.get(), true);
    util::set_nonblocking(stop_wr.get(), true);
  }

  void start_pipeline() {
    pipeline.emplace(
        opts.detector,
        core::ParallelConfig{.threads = opts.threads, .ring_capacity = opts.ring_capacity},
        core::ParallelScanPipeline::ShardSinkFactory([this](std::size_t) -> core::EventSink& {
          chains.push_back(std::make_unique<ShardChain>(queue, hub.add_slot(),
                                                        opts.snapshot_every, opts.top));
          return chains.back()->fan;
        }));
  }

  // ---------------- ingest thread ----------------

  void set_ingest_error(const std::string& what) {
    {
      std::lock_guard lock(error_mu);
      if (ingest_error.empty()) ingest_error = what;
    }
    queue.wake();  // unblock the poll loop so it notices
  }

  [[nodiscard]] std::string get_ingest_error() {
    std::lock_guard lock(error_mu);
    return ingest_error;
  }

  std::size_t feed_tail_once(std::vector<sim::LogRecord>& batch) {
    if (!tailer) return 0;
    batch.clear();
    tailer->poll([&](const sim::LogRecord& r) { batch.push_back(r); });
    if (!batch.empty()) pipeline->feed_batch(batch);
    tail_records.store(tailer->records(), std::memory_order_relaxed);
    tail_rotations.store(tailer->rotations(), std::memory_order_relaxed);
    tail_truncations.store(tailer->truncations(), std::memory_order_relaxed);
    return batch.size();
  }

  std::size_t feed_pushed_once(std::vector<sim::LogRecord>& local) {
    local.clear();
    {
      std::lock_guard lock(ingest_mu);
      local.swap(pushed_records);
    }
    if (!local.empty()) pipeline->feed_batch(local);
    return local.size();
  }

  void ingest_main() {
    std::vector<sim::LogRecord> tail_batch, push_batch;
    try {
      while (!ingest_stop.load(std::memory_order_relaxed)) {
        if (ingest_pause.load(std::memory_order_acquire)) {
          // Checkpoint quiesce: park between batches so the server
          // thread is the only one touching the pipeline's feeder.
          std::unique_lock lock(ingest_mu);
          ingest_paused = true;
          ingest_cv.notify_all();
          ingest_cv.wait(lock, [this] {
            return !ingest_pause.load(std::memory_order_acquire) ||
                   ingest_stop.load(std::memory_order_relaxed);
          });
          ingest_paused = false;
          continue;
        }
        std::size_t n = feed_tail_once(tail_batch);
        n += feed_pushed_once(push_batch);
        if (n > 0) {
          ingested.fetch_add(n, std::memory_order_relaxed);
          server_metrics().ingest_records.add(n);
          continue;  // keep draining while data is flowing
        }
        std::unique_lock lock(ingest_mu);
        if (pushed_records.empty() && !ingest_stop.load(std::memory_order_relaxed))
          ingest_cv.wait_for(lock, std::chrono::milliseconds(opts.poll_interval_ms));
      }
      // Drain request: pick up whatever arrived before the stop, then
      // flush — the pipeline joins its workers and every in-flight
      // finalizable event reaches the shard chains.
      std::size_t n = feed_tail_once(tail_batch) + feed_pushed_once(push_batch);
      if (n > 0) {
        ingested.fetch_add(n, std::memory_order_relaxed);
        server_metrics().ingest_records.add(n);
      }
      pipeline->flush();
      // The pipeline never flushes per-shard sinks; publish the final
      // deltas so the post-drain master reflects every event.
      for (auto& c : chains) c->publisher.flush();
    } catch (const std::exception& e) {
      set_ingest_error(e.what());
    }
  }

  // ---------------- checkpoint / re-attribution ----------------

  /// Park the ingest thread between batches; true once it is parked.
  /// The caller must resume_ingest() afterwards, success or not.
  [[nodiscard]] bool pause_ingest() {
    ingest_pause.store(true, std::memory_order_release);
    ingest_cv.notify_all();
    std::unique_lock lock(ingest_mu);
    return ingest_cv.wait_for(lock, std::chrono::seconds(10),
                              [this] { return ingest_paused; });
  }

  void resume_ingest() {
    ingest_pause.store(false, std::memory_order_release);
    ingest_cv.notify_all();
  }

  /// Freeze the whole daemon into `path`. Caller holds the ingest
  /// pause, so the server thread owns the pipeline feeder: the shard
  /// barrier saves each detector on its own worker thread and flushes
  /// the snapshot publishers, then the queue/hub drains make the
  /// server-side state (slim events, master bundle) current before
  /// the container commits. Returns a one-line summary payload.
  [[nodiscard]] std::string checkpoint_now(const std::string& path) {
    const std::size_t shards = static_cast<std::size_t>(pipeline->threads());
    std::vector<util::StateWriter> det_w(shards);
    pipeline->with_shard_state(
        [&](std::size_t s, core::ScanDetector& det, core::ArtifactFilter*) {
          det.save(det_w[s]);
          chains[s]->publisher.flush();
        });
    deliver_events();  // barrier-pushed events -> slim_events + spill
    hub.drain();       // barrier-published deltas -> master
    core::CheckpointWriter ck;
    util::StateWriter meta;
    meta.u32(static_cast<std::uint32_t>(shards));
    meta.u64(ingested.load(std::memory_order_relaxed));
    meta.u64(events_seen);
    meta.i64(period_s);
    meta.u8(spill ? 1 : 0);
    if (spill) {
      // Spilled events must be durable before the checkpoint that
      // references their count/offset (the resume constructor
      // truncates whatever follows them).
      spill->checkpoint_sync();
      meta.u64(spill->written());
      meta.u64(spill->offset());
    } else {
      meta.u64(0);
      meta.u64(0);
    }
    ck.add("daemon.meta", std::move(meta));
    for (std::size_t s = 0; s < shards; ++s)
      ck.add("shard" + std::to_string(s) + ".detector", std::move(det_w[s]));
    util::StateWriter mw;
    hub.save_master(mw);
    ck.add("master", std::move(mw));
    util::StateWriter ew;
    ew.u64(slim_events.size());
    for (const auto& ev : slim_events) core::save_scan_event(ew, ev);
    ck.add("events", std::move(ew));
    ck.commit(path);
    server_metrics().checkpoints.add();
    std::string out;
    appendf(out, "checkpointed %zu shards, %llu records, %llu events\n", shards,
            static_cast<unsigned long long>(ingested.load(std::memory_order_relaxed)),
            static_cast<unsigned long long>(events_seen));
    return out;
  }

  /// Restore-on-start counterpart: called from run() after
  /// start_pipeline() and before the ingest thread exists, so no
  /// quiesce is needed. The caller already adopted the checkpoint's
  /// shard count and resumed the spill from the saved offsets.
  void restore_checkpoint(const core::CheckpointReader& ck, std::uint64_t meta_ingested,
                          std::uint64_t meta_events_seen) {
    pipeline->with_shard_state(
        [&](std::size_t s, core::ScanDetector& det, core::ArtifactFilter*) {
          auto dr = ck.section("shard" + std::to_string(s) + ".detector");
          det.load(dr);
          dr.expect_end();
        });
    auto mr = ck.section("master");
    hub.restore_master(mr);
    mr.expect_end();
    auto er = ck.section("events");
    const std::uint64_t n = er.count(47);
    slim_events.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i)
      slim_events.push_back(core::load_scan_event(er));
    er.expect_end();
    ingested.store(meta_ingested, std::memory_order_relaxed);
    events_seen = meta_events_seen;
  }

  [[nodiscard]] std::string render_blocklist_now() {
    const core::AdaptiveConfig cfg{.ladder = {opts.detector.source_prefix_len}};
    return analysis::render_blocklist(core::attribute_adaptive({slim_events}, cfg));
  }

  /// Periodic pass (poll-loop housekeeping): recompute the cached
  /// blocklist on the configured cadence.
  void maybe_reattribute() {
    if (period_s <= 0 || Clock::now() < next_pass) return;
    cached_blocklist = render_blocklist_now();
    blocklist_cached = true;
    next_pass = Clock::now() + std::chrono::seconds(period_s);
    server_metrics().reattributions.add();
  }

  // ---------------- client IO ----------------

  void send_frame(Client& c, Frame&& f) {
    c.outbuf += encode_frame(f);
    server_metrics().frames_tx.add();
    try_send(c);
  }

  void respond(Client& c, const Frame& req, Status status, std::string payload) {
    Frame f;
    f.verb = req.verb;
    f.status = static_cast<std::uint8_t>(status);
    f.seq = req.seq;
    f.payload = std::move(payload);
    send_frame(c, std::move(f));
  }

  void try_send(Client& c) {
    while (c.out_pos < c.outbuf.size()) {
      const ssize_t n = ::send(c.fd.get(), c.outbuf.data() + c.out_pos,
                               c.outbuf.size() - c.out_pos, MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n > 0) {
        c.out_pos += static_cast<std::size_t>(n);
        c.last_progress = Clock::now();
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      c.dead = true;  // peer went away mid-response
      return;
    }
    if (c.out_pos == c.outbuf.size()) {
      c.outbuf.clear();
      c.out_pos = 0;
      if (c.closing) c.dead = true;
    } else if (c.outbuf.size() - c.out_pos > opts.max_client_buffer) {
      // A reader this far behind is not coming back; shedding it is
      // what keeps one stuck subscriber from holding daemon memory.
      server_metrics().dropped_overflow.add();
      c.dead = true;
    }
  }

  [[nodiscard]] std::string status_text() {
    std::string out;
    appendf(out, "ingested_records %llu\n",
            static_cast<unsigned long long>(ingested.load(std::memory_order_relaxed)));
    appendf(out, "events_seen %llu\n", static_cast<unsigned long long>(events_seen));
    appendf(out, "events_folded %llu\n",
            static_cast<unsigned long long>(hub.events_folded()));
    appendf(out, "snapshot_shards %zu\n", hub.shards());
    appendf(out, "clients %zu\n", clients.size());
    std::size_t subs = 0;
    for (const auto& c : clients) subs += c->subscribed;
    appendf(out, "subscribers %zu\n", subs);
    appendf(out, "tail_records %llu\n",
            static_cast<unsigned long long>(tail_records.load(std::memory_order_relaxed)));
    appendf(out, "tail_rotations %llu\n",
            static_cast<unsigned long long>(tail_rotations.load(std::memory_order_relaxed)));
    appendf(out, "tail_truncations %llu\n",
            static_cast<unsigned long long>(
                tail_truncations.load(std::memory_order_relaxed)));
    appendf(out, "spill_events %llu\n",
            static_cast<unsigned long long>(spill ? spill->written() : 0));
    appendf(out, "reattribution_period_s %lld\n", static_cast<long long>(period_s));
    appendf(out, "draining %d\n", draining ? 1 : 0);
    return out;
  }

  /// Parse a report verb's optional payload: an ASCII row count.
  [[nodiscard]] std::size_t parse_top(const std::string& payload) const {
    if (payload.empty()) return opts.top;
    char* end = nullptr;
    const unsigned long v = std::strtoul(payload.c_str(), &end, 10);
    if (end == payload.c_str() || *end != '\0' || v == 0) return opts.top;
    return static_cast<std::size_t>(v);
  }

  void handle_frame(Client& c, const Frame& req) {
    server_metrics().frames_rx.add();
    const auto verb = static_cast<Verb>(req.verb);
    const auto t0 = Clock::now();
    switch (verb) {
      case Verb::kPing:
        respond(c, req, Status::kOk, req.payload);
        break;
      case Verb::kStatus:
        // Drain first so events_folded reflects every published delta:
        // "status --wait-key events_folded" then a report verb is an
        // exact rendezvous, not a race against the publishers.
        hub.drain();
        respond(c, req, Status::kOk, status_text());
        break;
      case Verb::kReport:
        hub.drain();
        respond(c, req, Status::kOk,
                analysis::render_report(hub.master(), parse_top(req.payload)));
        break;
      case Verb::kTopSources:
        hub.drain();
        respond(c, req, Status::kOk,
                analysis::render_top_sources(hub.master(), parse_top(req.payload)));
        break;
      case Verb::kTopPorts:
        hub.drain();
        respond(c, req, Status::kOk, analysis::render_top_ports(hub.master()));
        break;
      case Verb::kAsReport:
        hub.drain();
        respond(c, req, Status::kOk,
                analysis::render_as_report(hub.master(), parse_top(req.payload)));
        break;
      case Verb::kBlocklist:
        // Periodic mode serves the cached pass (the period is the
        // staleness contract); on-demand mode recomputes per query.
        respond(c, req, Status::kOk,
                period_s > 0 && blocklist_cached ? cached_blocklist
                                                 : render_blocklist_now());
        break;
      case Verb::kMetrics:
        util::note_max_rss();
        respond(c, req, Status::kOk, util::metrics::snapshot().to_json() + "\n");
        break;
      case Verb::kSubscribe:
        c.subscribed = true;
        respond(c, req, Status::kOk, "subscribed\n");
        break;
      case Verb::kIngest: {
        if (draining) {
          respond(c, req, Status::kError, "draining; ingest rejected\n");
          break;
        }
        if (req.payload.empty() || req.payload.size() % sim::kLogRecordBytes != 0) {
          respond(c, req, Status::kError,
                  "ingest payload must be a positive multiple of 52 bytes\n");
          break;
        }
        const std::size_t n = req.payload.size() / sim::kLogRecordBytes;
        {
          std::lock_guard lock(ingest_mu);
          pushed_records.reserve(pushed_records.size() + n);
          const auto* p = reinterpret_cast<const std::uint8_t*>(req.payload.data());
          for (std::size_t i = 0; i < n; ++i)
            pushed_records.push_back(sim::decode_record(p + i * sim::kLogRecordBytes));
        }
        ingest_cv.notify_one();
        server_metrics().socket_records.add(n);
        respond(c, req, Status::kOk, std::to_string(n) + "\n");
        break;
      }
      case Verb::kShutdown:
        respond(c, req, Status::kOk, "draining\n");
        request_stop_impl();
        break;
      case Verb::kSetPeriod: {
        char* end = nullptr;
        const long long v = std::strtoll(req.payload.c_str(), &end, 10);
        if (req.payload.empty() || end == req.payload.c_str() || *end != '\0' || v < 0) {
          respond(c, req, Status::kError,
                  "set-period payload must be a non-negative ASCII second count\n");
          break;
        }
        period_s = v;
        blocklist_cached = false;  // next pass recomputes under the new cadence
        next_pass = Clock::now() + std::chrono::seconds(v);
        respond(c, req, Status::kOk, "period " + std::to_string(v) + "\n");
        break;
      }
      case Verb::kCheckpoint: {
        if (draining) {
          respond(c, req, Status::kError, "draining; checkpoint rejected\n");
          break;
        }
        const std::string path = req.payload.empty() ? opts.checkpoint_path : req.payload;
        if (path.empty()) {
          respond(c, req, Status::kError,
                  "no checkpoint path: pass one or start with --checkpoint\n");
          break;
        }
        if (!pause_ingest()) {
          resume_ingest();
          respond(c, req, Status::kError, "checkpoint failed: ingest did not quiesce\n");
          break;
        }
        try {
          std::string summary = checkpoint_now(path);
          resume_ingest();
          respond(c, req, Status::kOk, std::move(summary));
        } catch (const std::exception& e) {
          resume_ingest();
          respond(c, req, Status::kError,
                  std::string("checkpoint failed: ") + e.what() + "\n");
        }
        break;
      }
      default:
        respond(c, req, Status::kError,
                "unknown verb " + std::to_string(req.verb) + "\n");
        break;
    }
    server_metrics().queries.add();
    server_metrics().query_us.observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0).count()));
  }

  void handle_readable(Client& c) {
    char buf[16 * 1024];
    for (;;) {
      const ssize_t n = ::recv(c.fd.get(), buf, sizeof buf, MSG_DONTWAIT);
      if (n > 0) {
        c.decoder.feed(buf, static_cast<std::size_t>(n));
        c.last_progress = Clock::now();
        continue;
      }
      if (n == 0) {  // orderly disconnect
        server_metrics().disconnects.add();
        c.dead = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      c.dead = true;
      break;
    }
    Frame req;
    for (;;) {
      const auto r = c.decoder.next(req);
      if (r == FrameDecoder::Result::kNeedMore) break;
      if (r == FrameDecoder::Result::kMalformed) {
        // The framing error is the client's; tell it why, flush, and
        // cut only this connection. The daemon sails on.
        server_metrics().frames_malformed.add();
        Frame err;
        err.verb = req.verb;
        err.status = static_cast<std::uint8_t>(Status::kError);
        err.payload = "malformed frame: " + c.decoder.error() + "\n";
        c.closing = true;
        send_frame(c, std::move(err));
        break;
      }
      handle_frame(c, req);
      if (c.dead || c.closing) break;
    }
  }

  void accept_clients() {
    for (;;) {
      const int fd = ::accept4(listener.get(), nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) break;  // EAGAIN (or EINTR; next loop pass retries)
      auto c = std::make_unique<Client>();
      c->fd.reset(fd);
      clients.push_back(std::move(c));
      server_metrics().accepted.add();
    }
  }

  void deliver_events() {
    auto events = queue.take();
    if (events.empty()) return;
    events_seen += events.size();
    for (auto& ev : events) {
      bool any_subscriber = false;
      for (const auto& c : clients) any_subscriber |= c->subscribed && !c->dead;
      if (any_subscriber) {
        Frame push;
        push.verb = static_cast<std::uint8_t>(Verb::kSubscribe);
        push.status = static_cast<std::uint8_t>(Status::kEvent);
        push.payload = format_event_line(ev);
        const std::string wire = encode_frame(push);
        for (const auto& c : clients) {
          if (!c->subscribed || c->dead) continue;
          c->outbuf += wire;
          server_metrics().frames_tx.add();
          server_metrics().events_tx.add();
          try_send(*c);
        }
      }
      slim_events.push_back(core::slim_scan_event(ev));
      if (spill) spill->on_event(std::move(ev));  // last use
    }
  }

  void check_timeouts() {
    const auto now = Clock::now();
    const auto limit = std::chrono::milliseconds(opts.client_timeout_ms);
    for (const auto& c : clients) {
      if (c->dead) continue;
      // The timeout covers stalled work only: a partial frame we're
      // waiting to complete, or response bytes the peer won't read.
      // An idle-but-quiet subscriber or keepalive connection is fine.
      const bool mid_frame = c->decoder.buffered() > 0;
      const bool mid_write = c->out_pos < c->outbuf.size();
      if ((mid_frame || mid_write) && now - c->last_progress > limit) {
        server_metrics().dropped_timeout.add();
        c->dead = true;
      }
    }
  }

  void reap_clients() {
    std::erase_if(clients, [](const std::unique_ptr<Client>& c) { return c->dead; });
  }

  // ---------------- main loop + drain ----------------

  void request_stop_impl() {
    if (stop_requested.exchange(true)) return;
    const char b = 1;
    [[maybe_unused]] ssize_t rc = ::write(stop_wr.get(), &b, 1);
  }

  [[nodiscard]] bool should_stop() {
    return stop_requested.load(std::memory_order_relaxed) ||
           util::ShutdownSignal::requested() || !get_ingest_error().empty();
  }

  int run() {
    util::ShutdownSignal::install();
    setup_listener();
    if (!opts.tail_path.empty()) tailer.emplace(opts.tail_path);

    // Restore-on-start: an existing --checkpoint file is the state of
    // a previous incarnation (stop / upgrade / resume). Its shard
    // count is adopted — shard routing is a function of the count, so
    // per-shard detector state only loads back into the same layout.
    std::optional<core::CheckpointReader> resume;
    std::uint64_t meta_ingested = 0, meta_events_seen = 0;
    std::uint64_t spill_count = 0, spill_offset = 0;
    bool had_spill = false;
    if (!opts.checkpoint_path.empty() &&
        ::access(opts.checkpoint_path.c_str(), F_OK) == 0) {
      resume.emplace(opts.checkpoint_path);
      auto mr = resume->section("daemon.meta");
      opts.threads = static_cast<int>(mr.u32());
      meta_ingested = mr.u64();
      meta_events_seen = mr.u64();
      period_s = mr.i64();
      had_spill = mr.u8() != 0;
      spill_count = mr.u64();
      spill_offset = mr.u64();
      mr.expect_end();
    }
    if (!opts.events_out.empty()) {
      if (resume && had_spill)
        spill.emplace(opts.events_out, spill_count, spill_offset);
      else
        spill.emplace(opts.events_out);
    }
    start_pipeline();
    if (resume) {
      restore_checkpoint(*resume, meta_ingested, meta_events_seen);
      std::fprintf(stderr, "v6sonard: restored %s (%llu records, %llu events)\n",
                   opts.checkpoint_path.c_str(),
                   static_cast<unsigned long long>(meta_ingested),
                   static_cast<unsigned long long>(meta_events_seen));
    }
    if (period_s > 0) next_pass = Clock::now() + std::chrono::seconds(period_s);
    ingest = std::thread([this] { ingest_main(); });

    while (!should_stop()) {
      // Snapshot the client count: accept_clients() below may grow the
      // vector, and the new connections have no pollfd this round.
      const std::size_t polled = clients.size();
      std::vector<pollfd> fds;
      fds.push_back({listener.get(), POLLIN, 0});
      fds.push_back({util::ShutdownSignal::wake_fd(), POLLIN, 0});
      fds.push_back({stop_rd.get(), POLLIN, 0});
      fds.push_back({queue.fd(), POLLIN, 0});
      for (std::size_t i = 0; i < polled; ++i) {
        short ev = POLLIN;
        if (clients[i]->out_pos < clients[i]->outbuf.size()) ev |= POLLOUT;
        fds.push_back({clients[i]->fd.get(), ev, 0});
      }
      const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                            opts.poll_interval_ms);
      if (rc < 0 && errno != EINTR) break;
      if (should_stop()) break;

      if (fds[0].revents & POLLIN) accept_clients();
      if (fds[3].revents & POLLIN) deliver_events();
      for (std::size_t i = 0; i < polled; ++i) {
        const short rev = fds[4 + i].revents;
        Client& c = *clients[i];
        if (rev & (POLLERR | POLLHUP | POLLNVAL)) {
          // Let a final read drain anything the peer sent before the
          // hangup, then the dead mark below (or recv()==0) takes it.
          handle_readable(c);
          if (!c.dead && !(rev & POLLIN) && c.outbuf.empty()) c.dead = true;
          continue;
        }
        if (rev & POLLIN) handle_readable(c);
        if (!c.dead && (rev & POLLOUT)) try_send(c);
      }
      check_timeouts();
      maybe_reattribute();
      reap_clients();
    }
    return drain();
  }

  int drain() {
    const auto t0 = Clock::now();
    draining = true;
    // 1. No new clients or pushed records.
    listener.close();
    // 2. Stop and join ingestion; the thread flushes the pipeline
    //    (joining the workers) and publishes the final snapshots.
    ingest_stop.store(true);
    ingest_cv.notify_all();
    if (ingest.joinable()) ingest.join();
    // 3. The last events are now in the queue; deliver them so
    //    subscribers, the spill, and the blocklist see everything.
    deliver_events();
    hub.drain();
    // 4. Finalize the durable outputs (both fsync before reporting
    //    success — the satellite-1 contract).
    int rc = 0;
    if (spill) {
      try {
        spill->close();
        std::fprintf(stderr, "v6sonard: spilled %llu events to %s\n",
                     static_cast<unsigned long long>(spill->written()),
                     opts.events_out.c_str());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "v6sonard: %s\n", e.what());
        rc = 1;
      }
    }
    if (opts.write_metrics && !write_metrics_file()) rc = 1;
    // 5. Best-effort flush of pending client output, then close all.
    const auto flush_deadline = Clock::now() + std::chrono::milliseconds(500);
    for (const auto& c : clients) {
      while (!c->dead && c->out_pos < c->outbuf.size() && Clock::now() < flush_deadline) {
        try_send(*c);
        if (c->out_pos < c->outbuf.size())
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    clients.clear();
    ::unlink(opts.socket_path.c_str());
    const std::string err = get_ingest_error();
    if (!err.empty()) {
      std::fprintf(stderr, "v6sonard: ingest failed: %s\n", err.c_str());
      rc = 1;
    }
    server_metrics().drain_us.note(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0).count()));
    return rc;
  }

  [[nodiscard]] bool write_metrics_file() {
    util::note_max_rss();
    const std::string json = util::metrics::snapshot().to_json();
    if (opts.metrics_out.empty() || opts.metrics_out == "-") {
      std::printf("%s\n", json.c_str());
      return true;
    }
    std::FILE* f = std::fopen(opts.metrics_out.c_str(), "wb");
    if (!f) {
      std::fprintf(stderr, "v6sonard: cannot write metrics to %s\n",
                   opts.metrics_out.c_str());
      return false;
    }
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
                    std::fputc('\n', f) != EOF && util::flush_to_disk(f);
    if (std::fclose(f) != 0 || !ok) {
      std::fprintf(stderr, "v6sonard: metrics write to %s failed\n",
                   opts.metrics_out.c_str());
      return false;
    }
    std::fprintf(stderr, "v6sonard: metrics written to %s\n", opts.metrics_out.c_str());
    return true;
  }
};

Daemon::Daemon(DaemonOptions opts) : impl_(std::make_unique<Impl>(std::move(opts))) {}

Daemon::~Daemon() {
  if (impl_ && impl_->ingest.joinable()) {
    impl_->ingest_stop.store(true);
    impl_->ingest_cv.notify_all();
    impl_->ingest.join();
  }
}

int Daemon::run() { return impl_->run(); }

void Daemon::request_stop() { impl_->request_stop_impl(); }

}  // namespace v6sonar::daemon
