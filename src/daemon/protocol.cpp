#include "daemon/protocol.hpp"

#include <cstdio>

namespace v6sonar::daemon {

const char* verb_name(Verb v) noexcept {
  switch (v) {
    case Verb::kPing: return "ping";
    case Verb::kStatus: return "status";
    case Verb::kReport: return "report";
    case Verb::kTopSources: return "top-sources";
    case Verb::kTopPorts: return "top-ports";
    case Verb::kAsReport: return "as-report";
    case Verb::kBlocklist: return "blocklist";
    case Verb::kMetrics: return "metrics";
    case Verb::kSubscribe: return "subscribe";
    case Verb::kIngest: return "ingest";
    case Verb::kShutdown: return "shutdown";
    case Verb::kSetPeriod: return "set-period";
    case Verb::kCheckpoint: return "checkpoint";
  }
  return "?";
}

bool parse_verb(const std::string& name, Verb& out) noexcept {
  for (const Verb v : {Verb::kPing, Verb::kStatus, Verb::kReport, Verb::kTopSources,
                       Verb::kTopPorts, Verb::kAsReport, Verb::kBlocklist, Verb::kMetrics,
                       Verb::kSubscribe, Verb::kIngest, Verb::kShutdown,
                       Verb::kSetPeriod, Verb::kCheckpoint}) {
    if (name == verb_name(v)) {
      out = v;
      return true;
    }
  }
  return false;
}

std::string format_event_line(const core::ScanEvent& ev) {
  char buf[192];
  const int n = std::snprintf(
      buf, sizeof buf, " first=%lld last=%lld packets=%llu dsts=%lu asn=%lu\n",
      static_cast<long long>(ev.first_us / 1'000'000),
      static_cast<long long>(ev.last_us / 1'000'000),
      static_cast<unsigned long long>(ev.packets),
      static_cast<unsigned long>(ev.distinct_dsts), static_cast<unsigned long>(ev.src_asn));
  std::string line = ev.source.to_string();
  if (n > 0) line.append(buf, static_cast<std::size_t>(n));
  return line;
}

}  // namespace v6sonar::daemon
