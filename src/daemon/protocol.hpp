// v6sonard request/response vocabulary on top of the framing layer.
//
// Verbs are the daemon's query/control plane (docs/DAEMON.md has the
// full per-verb payload spec):
//
//   kPing        liveness; payload echoed back
//   kStatus      "key value\n" lines of live daemon state
//   kReport      full analyzer report over the current snapshot state
//   kTopSources  top-sources section only
//   kTopPorts    top-ports section only
//   kAsReport    per-AS section only
//   kBlocklist   adaptive attribution over observed scan events
//   kMetrics     util::metrics JSON snapshot
//   kSubscribe   switch the connection to live scan-event push
//   kIngest      push raw 52-byte .v6slog records into the pipeline
//   kShutdown    request a graceful drain (same path as SIGTERM)
//   kSetPeriod   change the re-attribution period (ASCII seconds;
//                0 disables the periodic pass)
//   kCheckpoint  freeze full daemon state into the checkpoint file
//                (payload overrides the configured path)
//
// Responses reuse the request's verb and seq, with status kOk/kError;
// pushed subscription events use Verb::kSubscribe with status kEvent.
#pragma once

#include <cstdint>
#include <string>

#include "core/scan_event.hpp"

namespace v6sonar::daemon {

enum class Verb : std::uint8_t {
  kPing = 1,
  kStatus = 2,
  kReport = 3,
  kTopSources = 4,
  kTopPorts = 5,
  kAsReport = 6,
  kBlocklist = 7,
  kMetrics = 8,
  kSubscribe = 9,
  kIngest = 10,
  kShutdown = 11,
  kSetPeriod = 12,
  kCheckpoint = 13,
};

enum class Status : std::uint8_t {
  kRequest = 0,  ///< client -> daemon
  kOk = 0x80,
  kError = 0x81,
  kEvent = 0x82,  ///< pushed subscription event
};

/// Lowercase verb name ("ping", "report", ...); "?" for unknown
/// values. The CLI accepts these same strings as query commands.
[[nodiscard]] const char* verb_name(Verb v) noexcept;

/// Parse a verb name back; returns false for unknown names.
[[nodiscard]] bool parse_verb(const std::string& name, Verb& out) noexcept;

/// Render one scan event as the single-line text payload of a pushed
/// kEvent frame: "<source> first=<s> last=<s> packets=<n> dsts=<n>
/// asn=<n>\n" with whole-second timestamps.
[[nodiscard]] std::string format_event_line(const core::ScanEvent& ev);

}  // namespace v6sonar::daemon
