// v6sonard: the long-running telescope daemon.
//
// One process, three kinds of threads:
//
//   ingest thread    tails the collector's .v6slog (LogTailer) and/or
//                    accepts records pushed over the socket (kIngest),
//                    and feeds them into a ParallelScanPipeline
//   worker threads   the pipeline's shards: detection plus the
//                    per-shard sink chain (event forwarder + snapshot
//                    publisher), owned entirely by the pipeline
//   server thread    the poll() loop: Unix-domain listener, client
//                    framing, query verbs rendered from the snapshot
//                    hub, subscription push, and the drain sequence
//
// Queries never touch worker state: they render from the SnapshotHub
// master bundle, fed by the workers' published deltas (see
// snapshot.hpp). The hot path's only cross-thread work is a mutex'd
// vector push (event forwarding) and a mutex'd slot move (snapshot
// publish) — readers can be arbitrarily slow without stalling
// detection.
//
// Shutdown (SIGINT/SIGTERM via util::ShutdownSignal, or the kShutdown
// verb) runs the graceful drain: stop accepting, stop and join
// ingestion (pipeline flush finalizes in-flight state), publish and
// merge the final snapshots, deliver the last events, finalize the
// --events spill and --metrics file (fsync'd), flush client output,
// exit 0. A second signal force-exits 128+signo. docs/DAEMON.md
// specifies the wire protocol and these semantics in full.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/detector.hpp"

namespace v6sonar::daemon {

struct DaemonOptions {
  std::string socket_path;  ///< Unix-domain socket to serve on (required)
  std::string tail_path;    ///< .v6slog to tail; empty = socket ingest only
  core::DetectorConfig detector;
  int threads = 1;               ///< pipeline shards; 0 = one per hardware thread
  std::size_t ring_capacity = 1 << 14;
  std::size_t top = 20;          ///< table depth for report verbs
  std::size_t snapshot_every = 32;  ///< events per shard between snapshot publishes
  int client_timeout_ms = 5'000;    ///< mid-frame read / pending-write stall cap
  int poll_interval_ms = 50;        ///< tail poll + housekeeping cadence
  std::size_t max_client_buffer = 64u << 20;  ///< per-client outbuf cap
  std::string events_out;    ///< optional .v6ev spill of every event
  std::string metrics_out;   ///< metrics JSON written at drain ("" = none,
                             ///< "-" = stdout)
  bool write_metrics = false;
  std::string checkpoint_path;  ///< checkpoint file: restored on start if it
                                ///< exists, default target of kCheckpoint
  std::int64_t reattribution_period_s = 0;  ///< periodic blocklist
                                            ///< re-attribution; 0 = on demand
                                            ///< only (kSetPeriod adjusts live)
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions opts);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Serve until a drain is requested; returns the process exit code
  /// (0 after a clean drain). Runs on the calling thread.
  int run();

  /// Request a graceful drain (thread-safe; also wired to kShutdown).
  void request_stop();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace v6sonar::daemon
