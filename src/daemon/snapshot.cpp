#include "daemon/snapshot.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "util/metrics.hpp"

namespace v6sonar::daemon {

namespace {

struct SnapshotMetrics {
  util::metrics::Counter publishes{"daemon.snapshot.publishes"};
  util::metrics::Counter merges{"daemon.snapshot.merges"};
  util::metrics::Counter events{"daemon.snapshot.events"};
  util::metrics::Counter coalesced{"daemon.snapshot.coalesced"};
  util::metrics::Histogram merge_us{"daemon.snapshot.merge_us"};
};

SnapshotMetrics& snap_metrics() {
  static SnapshotMetrics m;
  return m;
}

}  // namespace

void ShardSnapshotSlot::publish(analysis::ReportBundle&& delta, std::uint64_t events) {
  std::lock_guard lock(mu_);
  if (pending_) {
    // Server hasn't taken the previous delta: coalesce. Same-shard
    // deltas merge in publication order, preserving the per-shard
    // stream order the Analyzer merge contract needs.
    pending_->merge(std::move(delta));
    pending_events_ += events;
    snap_metrics().coalesced.add();
  } else {
    pending_.emplace(std::move(delta));
    pending_events_ = events;
  }
  snap_metrics().publishes.add();
}

std::optional<analysis::ReportBundle> ShardSnapshotSlot::take(std::uint64_t& events_out) {
  std::lock_guard lock(mu_);
  events_out = pending_events_;
  pending_events_ = 0;
  auto out = std::move(pending_);
  pending_.reset();
  return out;
}

SnapshotPublisher::SnapshotPublisher(ShardSnapshotSlot& slot, std::size_t publish_every,
                                     std::size_t top)
    : slot_(&slot),
      publish_every_(publish_every == 0 ? 1 : publish_every),
      top_(top),
      delta_(top) {}

void SnapshotPublisher::on_event(core::ScanEvent&& ev) {
  delta_.observe(ev);
  if (++delta_events_ >= publish_every_) publish();
}

void SnapshotPublisher::flush() {
  if (delta_events_ > 0) publish();
}

void SnapshotPublisher::publish() {
  analysis::ReportBundle fresh(top_);
  std::swap(fresh, delta_);
  slot_->publish(std::move(fresh), delta_events_);
  delta_events_ = 0;
}

SnapshotHub::SnapshotHub(std::size_t shards, std::size_t top) : top_(top), master_(top) {
  slots_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    slots_.push_back(std::make_unique<ShardSnapshotSlot>(top));
}

ShardSnapshotSlot& SnapshotHub::add_slot() {
  slots_.push_back(std::make_unique<ShardSnapshotSlot>(top_));
  return *slots_.back();
}

std::uint64_t SnapshotHub::drain() {
  std::uint64_t folded = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto& slot : slots_) {
    std::uint64_t events = 0;
    if (auto delta = slot->take(events)) {
      // Cross-shard merge order is free: per-source state never spans
      // shards (records shard by aggregated source).
      master_.merge(std::move(*delta));
      folded += events;
      snap_metrics().merges.add();
    }
  }
  if (folded) {
    events_folded_ += folded;
    snap_metrics().events.add(folded);
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    snap_metrics().merge_us.observe(static_cast<std::uint64_t>(us));
  }
  return folded;
}

void SnapshotHub::save_master(util::StateWriter& w) const {
  master_.save(w);
  w.u64(events_folded_);
}

void SnapshotHub::restore_master(util::StateReader& r) {
  if (events_folded_ != 0)
    throw std::runtime_error("SnapshotHub::restore_master: hub already folded events");
  master_.load(r);
  events_folded_ = r.u64();
}

}  // namespace v6sonar::daemon
