// Rotation-surviving .v6slog tailer — v6sonard's file ingestion path.
//
// A telescope collector appends fixed 52-byte records behind the
// 16-byte header; the daemon follows the file like `tail -F`:
//
//   - poll() reads whatever complete records have appeared since the
//     last call and hands them to the caller. A partial record at EOF
//     stays buffered until its remaining bytes arrive — appends are
//     not assumed atomic.
//   - Rotation (the collector renames the file away and starts a new
//     one at the same path) is detected by inode change: the old file
//     is drained to EOF first, then the tailer switches to the new
//     file from its header. No records are lost or reordered.
//   - Truncation (size shrank below our offset) restarts from the
//     header; the overwritten tail cannot be recovered and is counted.
//   - A path that does not exist yet is not an error — poll() simply
//     returns 0 until the collector creates it.
//
// The header's record count is ignored: live files carry the
// placeholder 0 until LogWriter::close() backpatches it. The magic is
// verified once per file; a wrong magic throws (tailing a non-log file
// is a configuration error, not a transient).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/log_io.hpp"
#include "sim/record.hpp"
#include "util/fdio.hpp"

namespace v6sonar::daemon {

class LogTailer {
 public:
  using RecordFn = std::function<void(const sim::LogRecord&)>;

  explicit LogTailer(std::string path);

  /// Decode every complete record currently available (draining a
  /// rotated-away file before switching) and call `fn` for each, in
  /// file order. Returns the number of records delivered. Never
  /// blocks.
  std::size_t poll(const RecordFn& fn);

  [[nodiscard]] std::uint64_t records() const noexcept { return records_; }
  [[nodiscard]] std::uint64_t rotations() const noexcept { return rotations_; }
  [[nodiscard]] std::uint64_t truncations() const noexcept { return truncations_; }

 private:
  bool ensure_open();
  void close_current() noexcept;
  std::size_t drain_fd(const RecordFn& fn);

  std::string path_;
  util::UniqueFd fd_;
  std::uint64_t ino_ = 0;
  std::uint64_t dev_ = 0;
  std::uint64_t offset_ = 0;   ///< bytes consumed of the current file
  bool header_ok_ = false;     ///< magic verified for the current file
  std::vector<std::uint8_t> pending_;  ///< partial record/header bytes

  std::uint64_t records_ = 0;
  std::uint64_t rotations_ = 0;
  std::uint64_t truncations_ = 0;
};

}  // namespace v6sonar::daemon
