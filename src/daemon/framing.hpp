// v6sonard wire framing.
//
// Every message on the daemon socket — request, response, or pushed
// subscription event — is one length-prefixed frame:
//
//   offset  size  field
//        0     4  payload length, u32 little-endian (payload only,
//                 header excluded); at most kMaxPayload
//        4     1  verb  (daemon::Verb)
//        5     1  status (0 on requests; Status::kOk/kError/kEvent on
//                 responses)
//        6     2  sequence number, u16 little-endian — echoed verbatim
//                 in every response to the carrying request, so a
//                 client may pipeline requests and match replies
//        8     n  payload bytes (verb-specific; see docs/DAEMON.md)
//
// FrameDecoder is an incremental parser over an arbitrary byte stream:
// feed() whatever recv() produced — any split, including mid-header —
// and next() yields complete frames. A frame that can never become
// valid (oversized length prefix) puts the decoder into a sticky
// malformed state: the connection carrying it cannot be resynchronized
// and must be dropped. Malformed input kills the client, never the
// daemon.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace v6sonar::daemon {

/// Frame header bytes on the wire.
inline constexpr std::size_t kFrameHeaderBytes = 8;

/// Hard payload cap. Larger length prefixes are malformed — the bound
/// that keeps a garbage or hostile length from reserving gigabytes.
inline constexpr std::uint32_t kMaxPayload = 16u << 20;

struct Frame {
  std::uint8_t verb = 0;
  std::uint8_t status = 0;
  std::uint16_t seq = 0;
  std::string payload;

  friend bool operator==(const Frame&, const Frame&) = default;
};

/// Serialize header + payload. Throws std::length_error if the payload
/// exceeds kMaxPayload — a daemon bug, not a client's.
[[nodiscard]] std::string encode_frame(const Frame& f);

class FrameDecoder {
 public:
  enum class Result {
    kFrame,     ///< a complete frame was produced
    kNeedMore,  ///< the buffered bytes end mid-frame
    kMalformed  ///< unrecoverable framing error; drop the connection
  };

  /// Append raw stream bytes. Cheap; parsing happens in next().
  void feed(const void* data, std::size_t n);

  /// Extract the next complete frame into `out`. kMalformed is sticky:
  /// once returned, every later call returns it again.
  Result next(Frame& out);

  /// Human-readable reason after kMalformed.
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  /// Bytes buffered but not yet consumed (partial frame).
  [[nodiscard]] std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;
  bool malformed_ = false;
  std::string error_;
};

}  // namespace v6sonar::daemon
