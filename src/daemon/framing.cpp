#include "daemon/framing.hpp"

#include <cstring>
#include <stdexcept>

namespace v6sonar::daemon {

std::string encode_frame(const Frame& f) {
  if (f.payload.size() > kMaxPayload)
    throw std::length_error("framing: payload exceeds kMaxPayload");
  const auto len = static_cast<std::uint32_t>(f.payload.size());
  std::string out;
  out.reserve(kFrameHeaderBytes + f.payload.size());
  out.push_back(static_cast<char>(len & 0xFF));
  out.push_back(static_cast<char>((len >> 8) & 0xFF));
  out.push_back(static_cast<char>((len >> 16) & 0xFF));
  out.push_back(static_cast<char>((len >> 24) & 0xFF));
  out.push_back(static_cast<char>(f.verb));
  out.push_back(static_cast<char>(f.status));
  out.push_back(static_cast<char>(f.seq & 0xFF));
  out.push_back(static_cast<char>((f.seq >> 8) & 0xFF));
  out += f.payload;
  return out;
}

void FrameDecoder::feed(const void* data, std::size_t n) {
  if (malformed_ || n == 0) return;
  // Compact before growing: consumed bytes at the front would otherwise
  // accumulate for the lifetime of the connection.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > (64u << 10) && pos_ >= buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(static_cast<const char*>(data), n);
}

FrameDecoder::Result FrameDecoder::next(Frame& out) {
  if (malformed_) return Result::kMalformed;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderBytes) return Result::kNeedMore;
  const auto* p = reinterpret_cast<const std::uint8_t*>(buf_.data()) + pos_;
  const std::uint32_t len = static_cast<std::uint32_t>(p[0]) |
                            (static_cast<std::uint32_t>(p[1]) << 8) |
                            (static_cast<std::uint32_t>(p[2]) << 16) |
                            (static_cast<std::uint32_t>(p[3]) << 24);
  if (len > kMaxPayload) {
    // The stream cannot be resynchronized past a lying length prefix.
    malformed_ = true;
    error_ = "length prefix " + std::to_string(len) + " exceeds " +
             std::to_string(kMaxPayload) + "-byte cap";
    return Result::kMalformed;
  }
  if (avail < kFrameHeaderBytes + len) return Result::kNeedMore;
  out.verb = p[4];
  out.status = p[5];
  out.seq = static_cast<std::uint16_t>(p[6] | (p[7] << 8));
  out.payload.assign(buf_, pos_ + kFrameHeaderBytes, len);
  pos_ += kFrameHeaderBytes + len;
  return Result::kFrame;
}

}  // namespace v6sonar::daemon
