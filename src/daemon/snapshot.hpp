// The daemon's snapshot/read seam between ingestion and queries.
//
// Queries must see in-flight analyzer state without ever stalling the
// detection hot path, and the hot path must never block on a reader.
// The seam is built from the Analyzer merge contract (PR 6): each
// pipeline shard folds its finalized events into a *private* delta
// ReportBundle on its worker thread, and every `publish_every` events
// moves that delta into a per-shard mailbox (one mutex'd slot; the
// only cross-thread touch, held for a pointer swap). The server thread
// drains the mailboxes on demand and merges the deltas into the master
// bundle queries render from.
//
//   worker:  observe .. observe   publish(move delta)   observe ..
//                                     |  (slot mutex, O(1))
//   server:          drain() -> master.merge(delta) .. render
//
// Freshness: a query reflects every event published before the drain;
// at most `publish_every - 1` events per shard (plus whatever the
// detector still holds as in-flight scans) are not yet visible.
// Correctness: per-source state is disjoint across shards and each
// shard's deltas are merged in publication order, so the merged master
// equals a serial fold of the same events — the snapshot-seam test
// asserts exactly this, and render_report makes the rendered bytes
// independent of merge interleaving.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "analysis/report_render.hpp"
#include "core/event_sink.hpp"

namespace v6sonar::daemon {

/// One shard's mailbox: worker publishes, server takes. If the server
/// is slow, consecutive deltas merge in place — the slot never grows.
class ShardSnapshotSlot {
 public:
  explicit ShardSnapshotSlot(std::size_t top) : top_(top) {}

  /// Worker side: move `delta` into the slot (merging with a pending
  /// one the server has not taken yet).
  void publish(analysis::ReportBundle&& delta, std::uint64_t events);

  /// Server side: take the pending delta, if any. Returns events
  /// folded into it via the out-param.
  std::optional<analysis::ReportBundle> take(std::uint64_t& events_out);

 private:
  std::size_t top_;
  std::mutex mu_;
  std::optional<analysis::ReportBundle> pending_;
  std::uint64_t pending_events_ = 0;
};

/// Per-shard EventSink half of the seam: folds events into a private
/// delta and publishes it every `publish_every` events. flush()
/// publishes the remainder — the daemon calls it during drain, after
/// the pipeline has joined its workers.
class SnapshotPublisher final : public core::EventSink {
 public:
  SnapshotPublisher(ShardSnapshotSlot& slot, std::size_t publish_every, std::size_t top);

  void on_event(core::ScanEvent&& ev) override;
  void flush() override;

 private:
  void publish();

  ShardSnapshotSlot* slot_;
  std::size_t publish_every_;
  std::size_t top_;
  analysis::ReportBundle delta_;
  std::uint64_t delta_events_ = 0;
};

/// The server-side rendezvous: owns every shard's slot and the master
/// bundle. Single-threaded (server thread) apart from the slots.
class SnapshotHub {
 public:
  SnapshotHub(std::size_t shards, std::size_t top);

  /// Append one more shard slot (factory-time registration: the
  /// pipeline's sink factory calls this once per shard, on the
  /// constructing thread, before any worker starts).
  ShardSnapshotSlot& add_slot();

  [[nodiscard]] ShardSnapshotSlot& slot(std::size_t shard) { return *slots_[shard]; }
  [[nodiscard]] std::size_t shards() const noexcept { return slots_.size(); }

  /// Pull every pending delta into the master bundle. Returns the
  /// number of events newly folded.
  std::uint64_t drain();

  /// State queries render from. Reflects everything drained so far.
  [[nodiscard]] const analysis::ReportBundle& master() const noexcept { return master_; }

  /// Events folded into master over the hub's lifetime.
  [[nodiscard]] std::uint64_t events_folded() const noexcept { return events_folded_; }

  /// Checkpoint half of the StateCodec seam: serialize the master
  /// bundle + fold counter. Call after drain() with the workers
  /// quiesced, so the master reflects every published delta.
  void save_master(util::StateWriter& w) const;

  /// Restore-on-start counterpart; the hub must be fresh (nothing
  /// folded yet). Consumes exactly save_master()'s bytes.
  void restore_master(util::StateReader& r);

 private:
  std::size_t top_;
  std::vector<std::unique_ptr<ShardSnapshotSlot>> slots_;
  analysis::ReportBundle master_;
  std::uint64_t events_folded_ = 0;
};

}  // namespace v6sonar::daemon
