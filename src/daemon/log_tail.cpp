#include "daemon/log_tail.hpp"

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cstring>
#include <stdexcept>

#include "util/metrics.hpp"

namespace v6sonar::daemon {

namespace {

struct TailMetrics {
  util::metrics::Counter records{"daemon.tail.records"};
  util::metrics::Counter bytes{"daemon.tail.bytes"};
  util::metrics::Counter rotations{"daemon.tail.rotations"};
  util::metrics::Counter truncations{"daemon.tail.truncations"};
};

TailMetrics& tail_metrics() {
  static TailMetrics m;
  return m;
}

}  // namespace

LogTailer::LogTailer(std::string path) : path_(std::move(path)) {}

void LogTailer::close_current() noexcept {
  fd_.close();
  ino_ = dev_ = 0;
  offset_ = 0;
  header_ok_ = false;
  pending_.clear();
}

bool LogTailer::ensure_open() {
  if (fd_.get() >= 0) return true;
  const int fd = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;  // not created yet — not an error
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return false;
  }
  fd_ = util::UniqueFd(fd);
  ino_ = st.st_ino;
  dev_ = st.st_dev;
  offset_ = 0;
  header_ok_ = false;
  pending_.clear();
  return true;
}

std::size_t LogTailer::drain_fd(const RecordFn& fn) {
  std::size_t delivered = 0;
  std::array<std::uint8_t, 64 * 1024> buf;
  for (;;) {
    ssize_t got = ::pread(fd_.get(), buf.data(), buf.size(),
                          static_cast<off_t>(offset_));
    if (got < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("log_tail: read failed on " + path_);
    }
    if (got == 0) break;
    offset_ += static_cast<std::uint64_t>(got);
    tail_metrics().bytes.add(static_cast<std::uint64_t>(got));
    pending_.insert(pending_.end(), buf.data(), buf.data() + got);

    std::size_t pos = 0;
    if (!header_ok_) {
      if (pending_.size() < sim::kLogHeaderBytes) continue;
      std::uint64_t magic = 0;
      std::memcpy(&magic, pending_.data(), sizeof magic);
      if (magic != sim::kLogMagic)
        throw std::runtime_error("log_tail: " + path_ + " is not a .v6slog file");
      header_ok_ = true;
      pos = sim::kLogHeaderBytes;  // count field ignored: live files say 0
    }
    while (pending_.size() - pos >= sim::kLogRecordBytes) {
      fn(sim::decode_record(pending_.data() + pos));
      pos += sim::kLogRecordBytes;
      ++delivered;
    }
    if (pos > 0) pending_.erase(pending_.begin(), pending_.begin() + static_cast<long>(pos));
  }
  if (delivered) {
    records_ += delivered;
    tail_metrics().records.add(delivered);
  }
  return delivered;
}

std::size_t LogTailer::poll(const RecordFn& fn) {
  if (!ensure_open()) return 0;

  // Truncation: the current file shrank below what we consumed. The
  // overwritten tail is gone; restart from the (new) header.
  struct stat cur{};
  if (::fstat(fd_.get(), &cur) == 0 &&
      static_cast<std::uint64_t>(cur.st_size) < offset_) {
    ++truncations_;
    tail_metrics().truncations.add();
    const int keep = fd_.release();
    close_current();
    fd_ = util::UniqueFd(keep);  // same file, restart at byte 0
    ino_ = cur.st_ino;
    dev_ = cur.st_dev;
  }

  std::size_t delivered = drain_fd(fn);

  // Rotation: the path now names a different inode. The old fd was
  // just drained to EOF above, so switching loses nothing.
  struct stat now{};
  if (::stat(path_.c_str(), &now) == 0 &&
      (static_cast<std::uint64_t>(now.st_ino) != ino_ ||
       static_cast<std::uint64_t>(now.st_dev) != dev_)) {
    ++rotations_;
    tail_metrics().rotations.add();
    close_current();
    if (ensure_open()) delivered += drain_fd(fn);
  }
  return delivered;
}

}  // namespace v6sonar::daemon
