#include "sim/as_registry.hpp"

#include <stdexcept>

namespace v6sonar::sim {

std::string_view to_string(AsType t) noexcept {
  switch (t) {
    case AsType::kDatacenter: return "Datacenter";
    case AsType::kCloud: return "Cloud";
    case AsType::kCloudTransit: return "Cloud/Transit";
    case AsType::kTransit: return "Transit";
    case AsType::kIsp: return "ISP";
    case AsType::kResearch: return "Research";
    case AsType::kUniversity: return "University";
    case AsType::kCybersecurity: return "Cybersecurity";
    case AsType::kCdn: return "CDN";
  }
  return "?";
}

void AsRegistry::add(AsInfo info) {
  if (info.asn == 0) throw std::invalid_argument("AsRegistry: ASN 0 is reserved");
  if (find(info.asn) != nullptr)
    throw std::invalid_argument("AsRegistry: duplicate ASN " + std::to_string(info.asn));
  auto allocations = info.allocations;
  info.allocations.clear();
  infos_.push_back(std::move(info));
  try {
    for (const auto& p : allocations) allocate(infos_.back().asn, p);
  } catch (...) {
    infos_.pop_back();
    throw;
  }
}

void AsRegistry::allocate(std::uint32_t asn, const net::Ipv6Prefix& prefix) {
  AsInfo* info = nullptr;
  for (auto& i : infos_)
    if (i.asn == asn) info = &i;
  if (!info) throw std::invalid_argument("AsRegistry: unknown ASN " + std::to_string(asn));
  // Reject overlap in either direction: an existing allocation covering
  // this prefix, or this prefix covering an existing allocation.
  if (const auto m = by_prefix_.longest_match(prefix.address());
      m && m->first.length() <= prefix.length() && m->first.contains(prefix)) {
    throw std::invalid_argument("AsRegistry: overlapping allocation " + prefix.to_string());
  }
  if (by_prefix_.count_under(prefix) != 0)
    throw std::invalid_argument("AsRegistry: allocation covers existing " + prefix.to_string());
  by_prefix_.insert(prefix, asn);
  info->allocations.push_back(prefix);
}

const AsInfo* AsRegistry::find(std::uint32_t asn) const noexcept {
  for (const auto& i : infos_)
    if (i.asn == asn) return &i;
  return nullptr;
}

std::uint32_t AsRegistry::asn_of(const net::Ipv6Address& a) const noexcept {
  const auto m = by_prefix_.longest_match(a);
  return m ? *m->second : 0;
}

std::optional<net::Ipv6Prefix> AsRegistry::allocation_of(
    const net::Ipv6Address& a) const noexcept {
  const auto m = by_prefix_.longest_match(a);
  if (!m) return std::nullopt;
  // The trie reconstructs the matched prefix from the probe address,
  // which is exactly the stored allocation (host bits masked).
  return m->first;
}

}  // namespace v6sonar::sim
