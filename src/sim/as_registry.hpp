// AS metadata and prefix-allocation registry.
//
// Stands in for the WHOIS/BGP joins the paper performed: generators
// draw source addresses from an AS's allocations, and analyses map
// source prefixes back to ASes via longest-prefix match.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/prefix.hpp"
#include "net/trie.hpp"

namespace v6sonar::sim {

/// Network types used in the paper's Table 2.
enum class AsType {
  kDatacenter,
  kCloud,
  kCloudTransit,
  kTransit,
  kIsp,
  kResearch,
  kUniversity,
  kCybersecurity,
  kCdn,  ///< the telescope's own deployment networks
};

[[nodiscard]] std::string_view to_string(AsType t) noexcept;

struct AsInfo {
  std::uint32_t asn = 0;
  AsType type = AsType::kIsp;
  std::string country;  ///< ISO-3166-ish label, e.g. "CN", "US/global"
  std::vector<net::Ipv6Prefix> allocations;
};

class AsRegistry {
 public:
  /// Register an AS. Throws std::invalid_argument on duplicate ASN,
  /// asn == 0, or an allocation overlapping another AS's allocation.
  void add(AsInfo info);

  /// Register an additional allocation for an existing AS.
  void allocate(std::uint32_t asn, const net::Ipv6Prefix& prefix);

  [[nodiscard]] const AsInfo* find(std::uint32_t asn) const noexcept;

  /// Longest-prefix-match the address to its owning AS (0 if none).
  [[nodiscard]] std::uint32_t asn_of(const net::Ipv6Address& a) const noexcept;

  /// The covering allocation of an address, if any.
  [[nodiscard]] std::optional<net::Ipv6Prefix> allocation_of(
      const net::Ipv6Address& a) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return infos_.size(); }

  /// All registered ASes, in registration order.
  [[nodiscard]] const std::vector<AsInfo>& all() const noexcept { return infos_; }

 private:
  std::vector<AsInfo> infos_;
  net::PrefixTrie<std::uint32_t> by_prefix_;  // allocation -> ASN
};

}  // namespace v6sonar::sim
