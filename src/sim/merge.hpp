// K-way time-ordered merge of record streams.
#pragma once

#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "sim/record.hpp"

namespace v6sonar::sim {

/// Merges any number of time-sorted RecordStreams into one sorted
/// stream. Ties are broken by source index, keeping the merge stable
/// and deterministic.
class MergedStream final : public RecordStream {
 public:
  explicit MergedStream(std::vector<std::unique_ptr<RecordStream>> sources)
      : sources_(std::move(sources)) {
    for (std::size_t i = 0; i < sources_.size(); ++i) refill(i);
  }

  [[nodiscard]] std::optional<LogRecord> next() override {
    if (heap_.empty()) return std::nullopt;
    Entry top = heap_.top();
    heap_.pop();
    refill(top.source);
    return top.rec;
  }

 private:
  struct Entry {
    LogRecord rec;
    std::size_t source;
    // Min-heap on (timestamp, source index) via reversed comparison.
    friend bool operator<(const Entry& a, const Entry& b) noexcept {
      if (a.rec.ts_us != b.rec.ts_us) return a.rec.ts_us > b.rec.ts_us;
      return a.source > b.source;
    }
  };

  void refill(std::size_t i) {
    if (auto r = sources_[i]->next()) heap_.push(Entry{*r, i});
  }

  std::vector<std::unique_ptr<RecordStream>> sources_;
  std::priority_queue<Entry> heap_;
};

/// Adapts a pre-built vector of records (sorted by the constructor)
/// into a stream; convenient in tests.
class VectorStream final : public RecordStream {
 public:
  explicit VectorStream(std::vector<LogRecord> records);

  [[nodiscard]] std::optional<LogRecord> next() override {
    if (pos_ >= records_.size()) return std::nullopt;
    return records_[pos_++];
  }

 private:
  std::vector<LogRecord> records_;
  std::size_t pos_ = 0;
};

/// Drains a stream to a vector (tests/small worlds only).
[[nodiscard]] std::vector<LogRecord> drain(RecordStream& s);

}  // namespace v6sonar::sim
