#include "sim/merge.hpp"

#include <algorithm>

namespace v6sonar::sim {

VectorStream::VectorStream(std::vector<LogRecord> records) : records_(std::move(records)) {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const LogRecord& a, const LogRecord& b) { return a.ts_us < b.ts_us; });
}

std::vector<LogRecord> drain(RecordStream& s) {
  std::vector<LogRecord> out;
  while (auto r = s.next()) out.push_back(*r);
  return out;
}

}  // namespace v6sonar::sim
