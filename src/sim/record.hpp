// The unsolicited-traffic log record: the unit every stage of the
// pipeline exchanges (scanner generators -> telescope filter ->
// artifact filter -> scan detector -> analyses).
//
// This mirrors the fields available in the paper's CDN firewall logs
// plus two ground-truth annotations (source ASN, DNS exposure of the
// destination) that the paper derived by joining external data; here
// the simulator provides them and analyses must join the same way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "net/ipv6.hpp"
#include "wire/packet.hpp"

namespace v6sonar::sim {

/// Microsecond-resolution simulation timestamp (Unix epoch, UTC).
using TimeUs = std::int64_t;

inline constexpr TimeUs kUsPerSecond = 1'000'000;

[[nodiscard]] constexpr TimeUs us_from_seconds(std::int64_t sec) noexcept {
  return sec * kUsPerSecond;
}
[[nodiscard]] constexpr std::int64_t seconds_of(TimeUs us) noexcept {
  return us / kUsPerSecond;
}

struct LogRecord {
  TimeUs ts_us = 0;
  net::Ipv6Address src;
  net::Ipv6Address dst;
  wire::IpProto proto = wire::IpProto::kTcp;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t frame_len = 0;

  // Ground-truth annotations (filled by the telescope / registry join).
  std::uint32_t src_asn = 0;  ///< 0 = unknown
  bool dst_in_dns = false;    ///< destination address is DNS-exposed

  friend bool operator==(const LogRecord&, const LogRecord&) = default;
};

/// Pull-based record stream. Implementations yield records in
/// non-decreasing timestamp order; nullopt ends the stream.
class RecordStream {
 public:
  virtual ~RecordStream() = default;
  [[nodiscard]] virtual std::optional<LogRecord> next() = 0;

  /// Fill `out` with up to `max` records; returns how many were
  /// written (0 = end of stream). The batched data plane pulls whole
  /// batches per call instead of one virtual call + optional copy per
  /// record; the default keeps every existing generator working, and
  /// readers with cheap random access (sim::MappedLogReader) override
  /// it with a direct decode loop.
  virtual std::size_t next_batch(LogRecord* out, std::size_t max) {
    std::size_t n = 0;
    while (n < max) {
      auto r = next();
      if (!r) break;
      out[n++] = *r;
    }
    return n;
  }
};

}  // namespace v6sonar::sim
