// Binary firewall-log serialization.
//
// The CDN pipeline in the paper works from stored firewall logs; this
// is the equivalent persistent form of our LogRecord stream. Fixed
// 52-byte little-endian records behind a small header. Used by the
// bench harness to generate the 15-month world once and stream it into
// every experiment, and usable as a general interchange format.
//
// Two readers share the format:
//   LogReader        buffered stdio, record-at-a-time or batched
//   MappedLogReader  mmap-backed, zero-copy: the header is validated
//                    once and records are decoded straight from the
//                    mapping into caller-provided batches — the fast
//                    path of the batched data plane (replay cost is
//                    the decode loop, no per-record syscalls/copies).
//
// Both validate the file shape at open (magic, and that the header
// record count matches the file size exactly) and throw
// std::runtime_error naming the path on any mismatch — a truncated or
// corrupt log is refused up front, never silently short-read.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "sim/record.hpp"

namespace v6sonar::sim {

inline constexpr std::uint64_t kLogMagic = 0x56'36'53'4C'4F'47'30'31ULL;  // "V6SLOG01"

/// Serialized record size; the on-disk layout is fixed little-endian.
inline constexpr std::size_t kLogRecordBytes = 52;
/// File header: magic + record count.
inline constexpr std::size_t kLogHeaderBytes = 16;

/// Serialize one record into a kLogRecordBytes buffer (the fixed
/// little-endian wire layout shared by the log files and the daemon's
/// socket-ingest frames).
void encode_record(const LogRecord& r, std::uint8_t* out) noexcept;

/// Decode one record from a kLogRecordBytes buffer. The layout has no
/// invalid encodings, so this cannot fail.
[[nodiscard]] LogRecord decode_record(const std::uint8_t* p) noexcept;

/// Streaming writer. Throws std::runtime_error on I/O errors.
class LogWriter {
 public:
  explicit LogWriter(const std::string& path);
  ~LogWriter();
  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  void write(const LogRecord& r);
  /// Finalize the header (record count) and close.
  void close();

  [[nodiscard]] std::uint64_t written() const noexcept { return count_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::uint64_t count_ = 0;
};

/// Streaming reader; a RecordStream, so it plugs into the pipeline
/// anywhere a generator does. next_batch() amortizes the stdio read
/// over whole batches.
class LogReader final : public RecordStream {
 public:
  explicit LogReader(const std::string& path);
  ~LogReader() override;
  LogReader(const LogReader&) = delete;
  LogReader& operator=(const LogReader&) = delete;

  [[nodiscard]] std::optional<LogRecord> next() override;
  std::size_t next_batch(LogRecord* out, std::size_t max) override;

  [[nodiscard]] std::uint64_t total_records() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Zero-copy reader: maps the whole log and decodes fixed 52-byte
/// records directly from the mapping. The header is validated once at
/// open; next_batch() is then a pure decode loop over the mapped
/// bytes — no syscalls, no buffering, no per-record allocation.
class MappedLogReader final : public RecordStream {
 public:
  explicit MappedLogReader(const std::string& path);
  ~MappedLogReader() override;
  MappedLogReader(const MappedLogReader&) = delete;
  MappedLogReader& operator=(const MappedLogReader&) = delete;

  [[nodiscard]] std::optional<LogRecord> next() override;
  std::size_t next_batch(LogRecord* out, std::size_t max) override;

  [[nodiscard]] std::uint64_t total_records() const noexcept;
  /// Records consumed so far (= the cursor into the mapping).
  [[nodiscard]] std::uint64_t position() const noexcept;
  /// Rewind to the first record (replays reuse one mapping).
  void rewind() noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace v6sonar::sim
