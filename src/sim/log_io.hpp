// Binary firewall-log serialization.
//
// The CDN pipeline in the paper works from stored firewall logs; this
// is the equivalent persistent form of our LogRecord stream. Fixed
// 52-byte little-endian records behind a small header. Used by the
// bench harness to generate the 15-month world once and stream it into
// every experiment, and usable as a general interchange format.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "sim/record.hpp"

namespace v6sonar::sim {

inline constexpr std::uint64_t kLogMagic = 0x56'36'53'4C'4F'47'30'31ULL;  // "V6SLOG01"

/// Streaming writer. Throws std::runtime_error on I/O errors.
class LogWriter {
 public:
  explicit LogWriter(const std::string& path);
  ~LogWriter();
  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  void write(const LogRecord& r);
  /// Finalize the header (record count) and close.
  void close();

  [[nodiscard]] std::uint64_t written() const noexcept { return count_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::uint64_t count_ = 0;
};

/// Streaming reader; a RecordStream, so it plugs into the pipeline
/// anywhere a generator does.
class LogReader final : public RecordStream {
 public:
  explicit LogReader(const std::string& path);
  ~LogReader() override;
  LogReader(const LogReader&) = delete;
  LogReader& operator=(const LogReader&) = delete;

  [[nodiscard]] std::optional<LogRecord> next() override;

  [[nodiscard]] std::uint64_t total_records() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace v6sonar::sim
