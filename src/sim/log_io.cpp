#include "sim/log_io.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace v6sonar::sim {

namespace {

constexpr std::size_t kRecordBytes = 52;

/// Serialize little-endian into a fixed buffer. Explicit byte writes
/// keep the format stable across hosts.
void pack(const LogRecord& r, std::uint8_t* out) noexcept {
  auto put = [&out](std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) *out++ = static_cast<std::uint8_t>(v >> (8 * i));
  };
  put(static_cast<std::uint64_t>(r.ts_us), 8);
  put(r.src.hi(), 8);
  put(r.src.lo(), 8);
  put(r.dst.hi(), 8);
  put(r.dst.lo(), 8);
  put(r.src_asn, 4);
  put(r.src_port, 2);
  put(r.dst_port, 2);
  put(r.frame_len, 2);
  put(static_cast<std::uint8_t>(r.proto), 1);
  put(r.dst_in_dns ? 1 : 0, 1);
}

LogRecord unpack(const std::uint8_t* in) noexcept {
  auto get = [&in](int bytes) {
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) v |= static_cast<std::uint64_t>(*in++) << (8 * i);
    return v;
  };
  LogRecord r;
  r.ts_us = static_cast<TimeUs>(get(8));
  const std::uint64_t shi = get(8), slo = get(8), dhi = get(8), dlo = get(8);
  r.src = net::Ipv6Address{shi, slo};
  r.dst = net::Ipv6Address{dhi, dlo};
  r.src_asn = static_cast<std::uint32_t>(get(4));
  r.src_port = static_cast<std::uint16_t>(get(2));
  r.dst_port = static_cast<std::uint16_t>(get(2));
  r.frame_len = static_cast<std::uint16_t>(get(2));
  r.proto = static_cast<wire::IpProto>(get(1));
  r.dst_in_dns = get(1) != 0;
  return r;
}

struct File {
  std::FILE* f = nullptr;
  File(const std::string& path, const char* mode) : f(std::fopen(path.c_str(), mode)) {
    if (!f) throw std::runtime_error("log_io: cannot open " + path);
  }
  ~File() {
    if (f) std::fclose(f);
  }
};

}  // namespace

struct LogWriter::Impl {
  explicit Impl(const std::string& path) : file(path, "wb") {
    std::setvbuf(file.f, nullptr, _IOFBF, 1 << 20);
    const std::uint64_t header[2] = {kLogMagic, 0};
    if (std::fwrite(header, 8, 2, file.f) != 2)
      throw std::runtime_error("log_io: header write failed");
  }
  File file;
};

LogWriter::LogWriter(const std::string& path) : impl_(std::make_unique<Impl>(path)) {}
LogWriter::~LogWriter() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; an incomplete file is detectable by
    // its header count of 0xFFFF... never written.
  }
}

void LogWriter::write(const LogRecord& r) {
  if (!impl_) throw std::runtime_error("log_io: writer closed");
  std::array<std::uint8_t, kRecordBytes> buf;
  pack(r, buf.data());
  if (std::fwrite(buf.data(), 1, buf.size(), impl_->file.f) != buf.size())
    throw std::runtime_error("log_io: record write failed");
  ++count_;
}

void LogWriter::close() {
  if (!impl_) return;
  if (std::fseek(impl_->file.f, 8, SEEK_SET) != 0 ||
      std::fwrite(&count_, 8, 1, impl_->file.f) != 1)
    throw std::runtime_error("log_io: header finalize failed");
  impl_.reset();
}

struct LogReader::Impl {
  explicit Impl(const std::string& path) : file(path, "rb") {
    std::setvbuf(file.f, nullptr, _IOFBF, 1 << 20);
    std::uint64_t header[2] = {};
    if (std::fread(header, 8, 2, file.f) != 2 || header[0] != kLogMagic)
      throw std::runtime_error("log_io: not a v6sonar log: " + path);
    total = header[1];
  }
  File file;
  std::uint64_t total = 0;
};

LogReader::LogReader(const std::string& path) : impl_(std::make_unique<Impl>(path)) {}
LogReader::~LogReader() = default;

std::optional<LogRecord> LogReader::next() {
  std::array<std::uint8_t, kRecordBytes> buf;
  const std::size_t got = std::fread(buf.data(), 1, buf.size(), impl_->file.f);
  if (got == 0) return std::nullopt;
  if (got != buf.size()) throw std::runtime_error("log_io: truncated record");
  return unpack(buf.data());
}

std::uint64_t LogReader::total_records() const noexcept { return impl_->total; }

}  // namespace v6sonar::sim
