#include "sim/log_io.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <bit>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "util/fdio.hpp"
#include "util/metrics.hpp"

namespace v6sonar::sim {

namespace {

constexpr std::size_t kRecordBytes = kLogRecordBytes;

/// Data-plane telemetry (names in docs/OBSERVABILITY.md). Recorded per
/// open / per batch — the per-record next() paths stay untouched.
struct LogIoMetrics {
  util::metrics::Counter bytes_mapped{"log.mmap.bytes_mapped"};
  util::metrics::Counter files_mapped{"log.mmap.files_mapped"};
  util::metrics::Counter mmap_records{"log.mmap.batch_records"};
  util::metrics::Counter stdio_records{"log.stdio.batch_records"};
  /// Batch-size distributions: was the reader actually fed full
  /// batches, or dribbling?
  util::metrics::Histogram mmap_batch{"log.mmap.batch_size"};
  util::metrics::Histogram stdio_batch{"log.stdio.batch_size"};
};

LogIoMetrics& lm() {
  static LogIoMetrics m;
  return m;
}

/// Little-endian load. On little-endian hosts this compiles to a
/// single unaligned load; the byte loop is the big-endian fallback.
template <typename T>
T load_le(const std::uint8_t* p) noexcept {
  if constexpr (std::endian::native == std::endian::little) {
    T v;
    std::memcpy(&v, p, sizeof(T));
    return v;
  } else {
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
      v = static_cast<T>(v | static_cast<T>(p[i]) << (8 * i));
    return v;
  }
}

/// Serialize little-endian into a fixed buffer. Explicit byte writes
/// keep the format stable across hosts.
void pack(const LogRecord& r, std::uint8_t* out) noexcept {
  auto put = [&out](std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) *out++ = static_cast<std::uint8_t>(v >> (8 * i));
  };
  put(static_cast<std::uint64_t>(r.ts_us), 8);
  put(r.src.hi(), 8);
  put(r.src.lo(), 8);
  put(r.dst.hi(), 8);
  put(r.dst.lo(), 8);
  put(r.src_asn, 4);
  put(r.src_port, 2);
  put(r.dst_port, 2);
  put(r.frame_len, 2);
  put(static_cast<std::uint8_t>(r.proto), 1);
  put(r.dst_in_dns ? 1 : 0, 1);
}

/// Field offsets match pack() above: ts 0, src 8, dst 24, asn 40,
/// ports 44/46, frame_len 48, proto 50, dns 51.
LogRecord decode(const std::uint8_t* p) noexcept {
  LogRecord r;
  if constexpr (std::endian::native == std::endian::little) {
    // The wire layout's first 40 bytes — ts then the two addresses,
    // each a little-endian u64 sequence — coincide with LogRecord's
    // in-memory layout on little-endian hosts, so one bulk copy
    // replaces five field loads. (The writer/reader roundtrip tests
    // pin this equivalence.)
    static_assert(offsetof(LogRecord, ts_us) == 0 && offsetof(LogRecord, src) == 8 &&
                  offsetof(LogRecord, dst) == 24);
    static_assert(std::is_trivially_copyable_v<LogRecord>);
    // void* cast: the partial (40-byte) overwrite is intentional — the
    // remaining fields are decoded right below — and trivially
    // copyable per the assert; GCC's -Wclass-memaccess can't see that.
    std::memcpy(static_cast<void*>(&r), p, 40);
  } else {
    r.ts_us = static_cast<TimeUs>(load_le<std::uint64_t>(p));
    r.src = net::Ipv6Address{load_le<std::uint64_t>(p + 8), load_le<std::uint64_t>(p + 16)};
    r.dst = net::Ipv6Address{load_le<std::uint64_t>(p + 24), load_le<std::uint64_t>(p + 32)};
  }
  r.src_asn = load_le<std::uint32_t>(p + 40);
  r.src_port = load_le<std::uint16_t>(p + 44);
  r.dst_port = load_le<std::uint16_t>(p + 46);
  r.frame_len = load_le<std::uint16_t>(p + 48);
  r.proto = static_cast<wire::IpProto>(p[50]);
  r.dst_in_dns = p[51] != 0;
  return r;
}

struct File {
  std::FILE* f = nullptr;
  File(const std::string& path, const char* mode) : f(std::fopen(path.c_str(), mode)) {
    if (!f) throw std::runtime_error("log_io: cannot open " + path);
  }
  ~File() {
    if (f) std::fclose(f);
  }
};

/// Shared open-time shape validation: the header count must match the
/// file size exactly. Errors name the path — a truncated or corrupt
/// log is a data problem the operator locates by file, not a crash.
std::uint64_t validate_header(const std::string& path, const std::uint8_t* header,
                              std::uint64_t file_size) {
  if (file_size < kLogHeaderBytes)
    throw std::runtime_error("log_io: truncated header (" + std::to_string(file_size) +
                             " bytes): " + path);
  if (load_le<std::uint64_t>(header) != kLogMagic)
    throw std::runtime_error("log_io: not a v6sonar log: " + path);
  const std::uint64_t total = load_le<std::uint64_t>(header + 8);
  const std::uint64_t body = file_size - kLogHeaderBytes;
  if (total > body / kRecordBytes || total * kRecordBytes != body)
    throw std::runtime_error("log_io: header claims " + std::to_string(total) +
                             " records but file holds " + std::to_string(body) +
                             " record bytes: " + path);
  return total;
}

}  // namespace

void encode_record(const LogRecord& r, std::uint8_t* out) noexcept { pack(r, out); }

LogRecord decode_record(const std::uint8_t* p) noexcept { return decode(p); }

struct LogWriter::Impl {
  explicit Impl(const std::string& path) : file(path, "wb") {
    std::setvbuf(file.f, nullptr, _IOFBF, 1 << 20);
    std::uint8_t header[kLogHeaderBytes] = {};
    for (int i = 0; i < 8; ++i) header[i] = static_cast<std::uint8_t>(kLogMagic >> (8 * i));
    if (std::fwrite(header, 1, sizeof header, file.f) != sizeof header)
      throw std::runtime_error("log_io: header write failed");
  }
  File file;
};

LogWriter::LogWriter(const std::string& path) : impl_(std::make_unique<Impl>(path)) {}
LogWriter::~LogWriter() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; an incomplete file is detectable by
    // its header count (0) mismatching the file size.
  }
}

void LogWriter::write(const LogRecord& r) {
  if (!impl_) throw std::runtime_error("log_io: writer closed");
  std::array<std::uint8_t, kRecordBytes> buf;
  pack(r, buf.data());
  if (std::fwrite(buf.data(), 1, buf.size(), impl_->file.f) != buf.size())
    throw std::runtime_error("log_io: record write failed");
  ++count_;
}

void LogWriter::close() {
  if (!impl_) return;
  auto impl = std::move(impl_);  // closed even if the finalize throws
  std::uint8_t count[8];
  for (int i = 0; i < 8; ++i) count[i] = static_cast<std::uint8_t>(count_ >> (8 * i));
  // Same durability contract as EventWriter::close: the backpatched
  // header must reach stable storage before close() reports success.
  if (std::fseek(impl->file.f, 8, SEEK_SET) != 0 ||
      std::fwrite(count, 1, 8, impl->file.f) != 8 || !util::flush_to_disk(impl->file.f))
    throw std::runtime_error("log_io: header finalize failed");
  std::FILE* f = impl->file.f;
  impl->file.f = nullptr;  // File dtor must not double-close
  if (std::fclose(f) != 0) throw std::runtime_error("log_io: close failed");
}

struct LogReader::Impl {
  explicit Impl(const std::string& p) : path(p), file(p, "rb") {
    std::setvbuf(file.f, nullptr, _IOFBF, 1 << 20);
    if (std::fseek(file.f, 0, SEEK_END) != 0)
      throw std::runtime_error("log_io: cannot size " + path);
    const long size = std::ftell(file.f);
    if (size < 0 || std::fseek(file.f, 0, SEEK_SET) != 0)
      throw std::runtime_error("log_io: cannot size " + path);
    std::uint8_t header[kLogHeaderBytes] = {};
    const std::size_t got = std::fread(header, 1, sizeof header, file.f);
    if (got != sizeof header)
      throw std::runtime_error("log_io: truncated header (" + std::to_string(got) +
                               " bytes): " + path);
    total = validate_header(path, header, static_cast<std::uint64_t>(size));
  }
  std::string path;
  File file;
  std::uint64_t total = 0;
  std::vector<std::uint8_t> batch_buf;  ///< next_batch() staging
};

LogReader::LogReader(const std::string& path) : impl_(std::make_unique<Impl>(path)) {}
LogReader::~LogReader() = default;

std::optional<LogRecord> LogReader::next() {
  std::array<std::uint8_t, kRecordBytes> buf;
  const std::size_t got = std::fread(buf.data(), 1, buf.size(), impl_->file.f);
  if (got == 0) return std::nullopt;
  if (got != buf.size())
    throw std::runtime_error("log_io: truncated record in " + impl_->path);
  return decode(buf.data());
}

std::size_t LogReader::next_batch(LogRecord* out, std::size_t max) {
  if (max == 0) return 0;
  auto& buf = impl_->batch_buf;
  buf.resize(max * kRecordBytes);
  const std::size_t got = std::fread(buf.data(), 1, buf.size(), impl_->file.f);
  if (got % kRecordBytes != 0)
    throw std::runtime_error("log_io: truncated record in " + impl_->path);
  const std::size_t n = got / kRecordBytes;
  for (std::size_t i = 0; i < n; ++i) out[i] = decode(buf.data() + i * kRecordBytes);
  if (n && util::metrics::enabled()) {
    lm().stdio_records.add(n);
    lm().stdio_batch.observe(n);
  }
  return n;
}

std::uint64_t LogReader::total_records() const noexcept { return impl_->total; }

struct MappedLogReader::Impl {
  explicit Impl(const std::string& p) : path(p) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) throw std::runtime_error("log_io: cannot open " + path);
    struct ::stat st = {};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      throw std::runtime_error("log_io: cannot stat " + path);
    }
    map_len = static_cast<std::size_t>(st.st_size);
    if (map_len > 0) {
      // MAP_POPULATE prefaults the whole file in one go — a replay
      // touches every page exactly once anyway, and taking ~50k minor
      // faults inside the decode loop costs more than batching them
      // at open. Fall back to a plain mapping if the kernel refuses.
      void* m = ::mmap(nullptr, map_len, PROT_READ, MAP_PRIVATE | MAP_POPULATE, fd, 0);
      if (m == MAP_FAILED) m = ::mmap(nullptr, map_len, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (m == MAP_FAILED) throw std::runtime_error("log_io: cannot mmap " + path);
      base = static_cast<const std::uint8_t*>(m);
      ::madvise(m, map_len, MADV_SEQUENTIAL);
    } else {
      ::close(fd);
    }
    try {
      total = validate_header(path, base, map_len);
    } catch (...) {
      unmap();
      throw;
    }
    lm().files_mapped.add();
    lm().bytes_mapped.add(map_len);
  }
  ~Impl() { unmap(); }
  void unmap() noexcept {
    if (base) ::munmap(const_cast<std::uint8_t*>(base), map_len);
    base = nullptr;
  }

  std::string path;
  const std::uint8_t* base = nullptr;
  std::size_t map_len = 0;
  std::uint64_t total = 0;
  std::uint64_t pos = 0;
};

MappedLogReader::MappedLogReader(const std::string& path)
    : impl_(std::make_unique<Impl>(path)) {}
MappedLogReader::~MappedLogReader() = default;

std::optional<LogRecord> MappedLogReader::next() {
  if (impl_->pos == impl_->total) return std::nullopt;
  return decode(impl_->base + kLogHeaderBytes + impl_->pos++ * kRecordBytes);
}

std::size_t MappedLogReader::next_batch(LogRecord* out, std::size_t max) {
  const std::uint64_t remaining = impl_->total - impl_->pos;
  const std::size_t n =
      static_cast<std::size_t>(remaining < max ? remaining : static_cast<std::uint64_t>(max));
  const std::uint8_t* p = impl_->base + kLogHeaderBytes + impl_->pos * kRecordBytes;
  for (std::size_t i = 0; i < n; ++i, p += kRecordBytes) out[i] = decode(p);
  impl_->pos += n;
  if (n && util::metrics::enabled()) {
    lm().mmap_records.add(n);
    lm().mmap_batch.observe(n);
  }
  return n;
}

std::uint64_t MappedLogReader::total_records() const noexcept { return impl_->total; }
std::uint64_t MappedLogReader::position() const noexcept { return impl_->pos; }
void MappedLogReader::rewind() noexcept { impl_->pos = 0; }

}  // namespace v6sonar::sim
