#include "core/streaming_ids.hpp"

#include <stdexcept>
#include <utility>

#include "util/metrics.hpp"

namespace v6sonar::core {

namespace {

/// IDS telemetry (names in docs/OBSERVABILITY.md). AlertTracker is the
/// state machine both the serial and the sharded front ends funnel
/// through, so counting here covers StreamingIds and ParallelIds alike.
struct IdsMetrics {
  util::metrics::Counter passes{"ids.reattribution.passes"};
  util::metrics::Counter alerts{"ids.alerts.total"};
  util::metrics::Counter alerts_new{"ids.alerts.new"};
  util::metrics::Counter alerts_escalated{"ids.alerts.escalated"};
  util::metrics::Gauge blocklist_size{"ids.blocklist.size_hw"};
};

IdsMetrics& im() {
  static IdsMetrics m;
  return m;
}

}  // namespace

ScanEvent slim_scan_event(const ScanEvent& ev) {
  ScanEvent slim;
  slim.source = ev.source;
  slim.first_us = ev.first_us;
  slim.last_us = ev.last_us;
  slim.packets = ev.packets;
  slim.distinct_dsts = ev.distinct_dsts;
  slim.src_asn = ev.src_asn;
  return slim;
}

void AlertTracker::update(std::vector<Attribution> attributions, sim::TimeUs now,
                          const AlertSink& sink) {
  im().passes.add();
  blocklist_ = std::move(attributions);
  im().blocklist_size.note(blocklist_.size());
  for (const auto& a : blocklist_) {
    const auto it = alerted_.find(a.source);
    if (it != alerted_.end() && it->second == a.level) continue;  // already known
    IdsAlert alert;
    alert.attribution = a;
    alert.at_us = now;
    // Escalation: a previously alerted finer prefix is now covered by
    // this coarser attribution.
    bool covers_known = false;
    for (const auto& [prefix, level] : alerted_)
      covers_known |= a.source != prefix && a.source.contains(prefix);
    alert.is_new = !covers_known && it == alerted_.end();
    alerted_[a.source] = a.level;
    im().alerts.add();
    (alert.is_new ? im().alerts_new : im().alerts_escalated).add();
    sink(alert);
  }
}

StreamingIds::StreamingIds(const IdsConfig& config, AlertSink sink)
    : config_(config), sink_(std::move(sink)) {
  if (!sink_) throw std::invalid_argument("StreamingIds: null sink");
  if (config_.reattribution_period_us <= 0)
    throw std::invalid_argument("StreamingIds: bad reattribution period");
  events_.resize(config_.adaptive.ladder.size());
  for (std::size_t i = 0; i < config_.adaptive.ladder.size(); ++i) {
    detectors_.push_back(std::make_unique<ScanDetector>(
        DetectorConfig{.source_prefix_len = config_.adaptive.ladder[i],
                       .min_destinations = config_.min_destinations,
                       .timeout_us = config_.timeout_us},
        [this, i](ScanEvent&& ev) { events_[i].push_back(slim_scan_event(ev)); }));
  }
}

void StreamingIds::feed(const sim::LogRecord& r) {
  if (next_pass_us_ == 0) next_pass_us_ = r.ts_us + config_.reattribution_period_us;
  for (auto& d : detectors_) d->feed(r);
  if (r.ts_us >= next_pass_us_) {
    reattribute(r.ts_us);
    next_pass_us_ = r.ts_us + config_.reattribution_period_us;
  }
}

void StreamingIds::feed_batch(std::span<const sim::LogRecord> batch) {
  // Slice at reattribution boundaries: a pass must run after the
  // triggering record is fed to every detector and before the next
  // record is fed to any, exactly as the record-at-a-time loop does.
  // Records within a slice never trigger, so each slice can take the
  // detectors' batched fast path. Detectors are independent, so
  // feeding d1 the whole slice before d2 produces the same per-level
  // event streams as interleaving record by record.
  while (!batch.empty()) {
    if (next_pass_us_ == 0) next_pass_us_ = batch[0].ts_us + config_.reattribution_period_us;
    std::size_t cut = batch.size();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].ts_us >= next_pass_us_) {
        cut = i + 1;  // the triggering record itself is fed first
        break;
      }
    }
    const std::span<const sim::LogRecord> slice = batch.first(cut);
    for (auto& d : detectors_) d->feed_batch(slice);
    if (batch[cut - 1].ts_us >= next_pass_us_) {
      reattribute(batch[cut - 1].ts_us);
      next_pass_us_ = batch[cut - 1].ts_us + config_.reattribution_period_us;
    }
    batch = batch.subspan(cut);
  }
}

void StreamingIds::flush() {
  for (auto& d : detectors_) d->flush();
  reattribute(next_pass_us_);
}

void StreamingIds::reattribute(sim::TimeUs now) {
  tracker_.update(attribute_adaptive(events_, config_.adaptive), now, sink_);
}

void AlertTracker::save(util::StateWriter& w) const {
  w.u64(blocklist_.size());
  for (const auto& a : blocklist_) save_attribution(w, a);
  // std::map iterates in key order, so this part is deterministic.
  w.u64(alerted_.size());
  for (const auto& [prefix, level] : alerted_) {
    save_prefix(w, prefix);
    w.i32(level);
  }
}

void AlertTracker::load(util::StateReader& r) {
  const std::uint64_t n_block = r.count(41);
  blocklist_.reserve(static_cast<std::size_t>(n_block));
  for (std::uint64_t i = 0; i < n_block; ++i) blocklist_.push_back(load_attribution(r));
  const std::uint64_t n_alerted = r.count(24);
  for (std::uint64_t i = 0; i < n_alerted; ++i) {
    const net::Ipv6Prefix prefix = load_prefix(r);
    alerted_[prefix] = r.i32();
  }
}

void StreamingIds::save(util::StateWriter& w) const {
  w.u64(config_.adaptive.ladder.size());
  for (const int level : config_.adaptive.ladder) w.i32(level);
  w.f64(config_.adaptive.absorb_ratio);
  w.u64(config_.adaptive.max_children_absorbed);
  w.u32(config_.min_destinations);
  w.i64(config_.timeout_us);
  w.i64(config_.reattribution_period_us);
  w.i64(next_pass_us_);
  for (std::size_t i = 0; i < detectors_.size(); ++i) {
    detectors_[i]->save(w);
    w.u64(events_[i].size());
    for (const auto& ev : events_[i]) save_scan_event(w, ev);
  }
  tracker_.save(w);
}

void StreamingIds::load(util::StateReader& r) {
  if (next_pass_us_ != 0)
    throw std::runtime_error("StreamingIds::load: IDS already fed");
  const std::uint64_t ladder_n = r.count(4);
  bool config_ok = ladder_n == config_.adaptive.ladder.size();
  for (std::uint64_t i = 0; i < ladder_n; ++i) {
    const int level = r.i32();
    config_ok = config_ok && i < config_.adaptive.ladder.size() &&
                level == config_.adaptive.ladder[static_cast<std::size_t>(i)];
  }
  config_ok = config_ok && r.f64() == config_.adaptive.absorb_ratio &&
              r.u64() == config_.adaptive.max_children_absorbed &&
              r.u32() == config_.min_destinations && r.i64() == config_.timeout_us &&
              r.i64() == config_.reattribution_period_us;
  if (!config_ok) throw std::runtime_error("StreamingIds::load: configuration mismatch");
  next_pass_us_ = r.i64();
  for (std::size_t i = 0; i < detectors_.size(); ++i) {
    detectors_[i]->load(r);
    const std::uint64_t n_events = r.count(47);
    events_[i].reserve(static_cast<std::size_t>(n_events));
    for (std::uint64_t e = 0; e < n_events; ++e) events_[i].push_back(load_scan_event(r));
  }
  tracker_.load(r);
  // No expect_end(): the outermost section consumer asserts it.
}

}  // namespace v6sonar::core
