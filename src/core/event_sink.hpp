// Composable streaming consumers of scan events.
//
// Every producer of ScanEvents (ScanDetector, ParallelScanPipeline,
// detect_multi) emits into an EventSink; every consumer — the
// incremental analyzers in src/analysis, the event_io spill writer,
// a plain vector — implements one. Chains are built from FanOutSink,
// so one detection pass can feed any number of analyses in bounded
// memory, which is what turns the batch "materialize all events, fold
// offline" workflow into an always-on streaming one.
//
// Contract: on_event() receives finalized events in the producer's
// deterministic emission order; flush() means "the stream is complete
// — finalize derived state" and must be safe to call exactly once
// after the last on_event(). Producers do NOT flush their sink (a sink
// chain may outlive one producer, e.g. when several detectors share an
// analyzer); whoever assembled the chain flushes it.
#pragma once

#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/scan_event.hpp"

namespace v6sonar::core {

class EventSink {
 public:
  virtual ~EventSink() = default;

  /// Consume one finalized event. The sink owns the moved-from value.
  virtual void on_event(ScanEvent&& ev) = 0;

  /// The stream is complete; finalize derived state. Combinators
  /// propagate the flush to their children in order.
  virtual void flush() {}
};

/// Adapts a callable — the bridge from the legacy
/// std::function-of-event constructors to the sink pipeline.
class FunctionSink final : public EventSink {
 public:
  using Fn = std::function<void(ScanEvent&&)>;

  explicit FunctionSink(Fn fn) : fn_(std::move(fn)) {
    if (!fn_) throw std::invalid_argument("FunctionSink: null function");
  }

  void on_event(ScanEvent&& ev) override { fn_(std::move(ev)); }

 private:
  Fn fn_;
};

/// Appends to a caller-owned vector: the materializing endpoint the
/// legacy vector-returning entry points are built from.
class VectorSink final : public EventSink {
 public:
  explicit VectorSink(std::vector<ScanEvent>& out) noexcept : out_(&out) {}

  void on_event(ScanEvent&& ev) override { out_->push_back(std::move(ev)); }

 private:
  std::vector<ScanEvent>* out_;
};

/// Fan-out/tee: delivers every event to every child, copying for all
/// but the last and moving into the last (so a single-child chain is
/// zero-copy). Children are non-owning and are visited in insertion
/// order, for on_event and flush alike.
class FanOutSink final : public EventSink {
 public:
  FanOutSink() = default;
  explicit FanOutSink(std::vector<EventSink*> children) : children_(std::move(children)) {
    for (EventSink* c : children_)
      if (c == nullptr) throw std::invalid_argument("FanOutSink: null child");
  }

  /// Append a child; events arriving after this call reach it.
  void add(EventSink& child) { children_.push_back(&child); }

  [[nodiscard]] std::size_t children() const noexcept { return children_.size(); }

  void on_event(ScanEvent&& ev) override {
    if (children_.empty()) return;
    for (std::size_t i = 0; i + 1 < children_.size(); ++i) {
      ScanEvent copy = ev;
      children_[i]->on_event(std::move(copy));
    }
    children_.back()->on_event(std::move(ev));
  }

  void flush() override {
    for (EventSink* c : children_) c->flush();
  }

 private:
  std::vector<EventSink*> children_;
};

}  // namespace v6sonar::core
