// Extended Fukuda–Heidemann scan detection for public traces (§4).
//
// The paper's MAWI cross-check uses a per-capture-window definition
// adapted from Fukuda & Heidemann (IMC'18), extended to large scans:
// a (source, destination port) pair is a scan component if the source
//   (i)   targets at least `min_destinations` destination IPs,
//   (ii)  on a single destination port,
//   (iii) with fewer than `max_packets_per_dst` packets per (port,
//         destination IP), and
//   (iv)  packet-length entropy below `max_length_entropy`.
// Components of one source that probed different ports are then merged
// into a single per-source scan report.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/prefix.hpp"
#include "sim/record.hpp"

namespace v6sonar::core {

struct FhConfig {
  int source_prefix_len = 64;
  /// Paper: 100 (large-scale); Fukuda–Heidemann original: 5.
  std::uint32_t min_destinations = 100;
  std::uint32_t max_packets_per_dst = 10;  ///< condition (iii): fewer than this
  double max_length_entropy = 0.1;         ///< condition (iv), normalized
};

/// Per-source scan report for one capture window, after merging the
/// per-port components.
struct FhScan {
  net::Ipv6Prefix source;
  std::uint32_t src_asn = 0;
  std::uint64_t packets = 0;       ///< across qualifying components
  std::uint32_t distinct_dsts = 0;  ///< union over qualifying components
  std::vector<std::uint16_t> ports;  ///< qualifying ports, ascending
  bool icmpv6 = false;              ///< any qualifying component was ICMPv6
};

/// Streaming accumulator for one capture window: feed records (or
/// batches) in any order as they come off the reader — nothing else is
/// buffered, so a window can be analyzed without materializing its
/// records — then finish() runs qualification and the per-source
/// merge. Memory is proportional to distinct (source, port, dst)
/// activity, not to the record count.
class FhAccumulator {
 public:
  explicit FhAccumulator(const FhConfig& config) : cfg_(config) {}

  void feed(const sim::LogRecord& r);
  void feed_batch(std::span<const sim::LogRecord> batch) {
    for (const auto& r : batch) feed(r);
  }

  /// Qualify components and merge per source; reports ordered by
  /// source prefix. The accumulator can keep feeding afterwards
  /// (finish() is a pure read).
  [[nodiscard]] std::vector<FhScan> finish() const;

  /// Records folded so far.
  [[nodiscard]] std::uint64_t records_seen() const noexcept { return records_seen_; }

 private:
  struct Component {
    std::uint64_t packets = 0;
    bool icmpv6 = false;
    std::unordered_map<net::Ipv6Address, std::uint32_t> per_dst;
    std::unordered_map<std::uint16_t, std::uint64_t> length_counts;
  };

  FhConfig cfg_;
  /// (source, port) -> component. std::map keeps output deterministic.
  std::map<std::pair<net::Ipv6Prefix, std::uint16_t>, Component> components_;
  std::unordered_map<net::Ipv6Prefix, std::uint32_t> asn_of_;
  std::uint64_t records_seen_ = 0;
};

/// Analyze one fully materialized capture window (e.g. a 15-minute
/// MAWI slice): a thin adapter over FhAccumulator. Records need not be
/// sorted. Reports are ordered by source prefix.
[[nodiscard]] std::vector<FhScan> fh_detect(std::span<const sim::LogRecord> window,
                                            const FhConfig& config);

}  // namespace v6sonar::core
