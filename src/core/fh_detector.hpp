// Extended Fukuda–Heidemann scan detection for public traces (§4).
//
// The paper's MAWI cross-check uses a per-capture-window definition
// adapted from Fukuda & Heidemann (IMC'18), extended to large scans:
// a (source, destination port) pair is a scan component if the source
//   (i)   targets at least `min_destinations` destination IPs,
//   (ii)  on a single destination port,
//   (iii) with fewer than `max_packets_per_dst` packets per (port,
//         destination IP), and
//   (iv)  packet-length entropy below `max_length_entropy`.
// Components of one source that probed different ports are then merged
// into a single per-source scan report.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/prefix.hpp"
#include "sim/record.hpp"

namespace v6sonar::core {

struct FhConfig {
  int source_prefix_len = 64;
  /// Paper: 100 (large-scale); Fukuda–Heidemann original: 5.
  std::uint32_t min_destinations = 100;
  std::uint32_t max_packets_per_dst = 10;  ///< condition (iii): fewer than this
  double max_length_entropy = 0.1;         ///< condition (iv), normalized
};

/// Per-source scan report for one capture window, after merging the
/// per-port components.
struct FhScan {
  net::Ipv6Prefix source;
  std::uint32_t src_asn = 0;
  std::uint64_t packets = 0;       ///< across qualifying components
  std::uint32_t distinct_dsts = 0;  ///< union over qualifying components
  std::vector<std::uint16_t> ports;  ///< qualifying ports, ascending
  bool icmpv6 = false;              ///< any qualifying component was ICMPv6
};

/// Analyze one capture window (e.g. a 15-minute MAWI slice). Records
/// need not be sorted. Reports are ordered by source prefix.
[[nodiscard]] std::vector<FhScan> fh_detect(std::span<const sim::LogRecord> window,
                                            const FhConfig& config);

}  // namespace v6sonar::core
