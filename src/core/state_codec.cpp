#include "core/state_codec.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "util/crc32.hpp"
#include "util/fdio.hpp"

namespace v6sonar::core {

namespace {

constexpr char kMagic[8] = {'V', '6', 'C', 'K', 'P', 'T', '0', '1'};
constexpr std::uint32_t kFormatVersion = 1;

[[nodiscard]] std::string dir_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash + 1);
}

}  // namespace

void CheckpointWriter::add(const std::string& name, util::StateWriter&& w) {
  for (const auto& [n, bytes] : sections_)
    if (n == name) throw std::runtime_error("checkpoint: duplicate section " + name);
  sections_.emplace_back(name, std::move(w).take());
}

void CheckpointWriter::commit(const std::string& path) const {
  // Assemble the whole container in memory: checkpoints are MBs, not
  // GBs, and a single buffer keeps the tmp-file write all-or-nothing.
  util::StateWriter out;
  out.raw(kMagic, sizeof kMagic);
  out.u32(kFormatVersion);
  out.u32(kCheckpointStateVersion);
  out.u32(static_cast<std::uint32_t>(sections_.size()));
  for (const auto& [name, payload] : sections_) {
    out.str(name);
    out.u64(payload.size());
    out.u32(util::crc32(payload.data(), payload.size()));
    out.raw(payload.data(), payload.size());
  }

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw std::runtime_error("checkpoint: cannot create " + tmp);
  util::UniqueFd file(fd);
  const auto& bytes = out.bytes();
  if (!util::write_fully(fd, bytes.data(), bytes.size()) || !util::sync_fd(fd)) {
    ::unlink(tmp.c_str());
    throw std::runtime_error("checkpoint: write failed for " + tmp);
  }
  file.close();
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw std::runtime_error("checkpoint: rename to " + path + " failed: " +
                             std::strerror(errno));
  }
  // fsync the directory so the rename itself survives a crash; best
  // effort on filesystems that reject directory fsync.
  const int dfd = ::open(dir_of(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    util::UniqueFd dir(dfd);
    (void)util::sync_fd(dfd);
  }
}

CheckpointReader::CheckpointReader(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw std::runtime_error("checkpoint: cannot open " + path);
  std::vector<std::uint8_t> bytes;
  if (std::fseek(f, 0, SEEK_END) == 0) {
    const long size = std::ftell(f);
    if (size > 0) bytes.reserve(static_cast<std::size_t>(size));
    std::rewind(f);
  }
  std::uint8_t buf[1 << 16];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof buf, f)) > 0;)
    bytes.insert(bytes.end(), buf, buf + n);
  const bool io_error = std::ferror(f) != 0;
  std::fclose(f);
  if (io_error) throw std::runtime_error("checkpoint: read failed for " + path);

  util::StateReader r(bytes);
  char magic[sizeof kMagic];
  if (bytes.size() < sizeof kMagic)
    throw std::runtime_error("checkpoint: " + path + " is not a checkpoint file");
  r.raw(magic, sizeof magic);
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0)
    throw std::runtime_error("checkpoint: bad magic in " + path);
  const std::uint32_t format = r.u32();
  if (format != kFormatVersion)
    throw std::runtime_error("checkpoint: unsupported container format " +
                             std::to_string(format) + " in " + path);
  const std::uint32_t state_version = r.u32();
  if (state_version != kCheckpointStateVersion)
    throw std::runtime_error("checkpoint: state version " + std::to_string(state_version) +
                             " does not match this build's " +
                             std::to_string(kCheckpointStateVersion) + " in " + path);
  const std::uint32_t n_sections = r.u32();
  for (std::uint32_t i = 0; i < n_sections; ++i) {
    std::string name = r.str();
    const std::uint64_t len = r.u64();
    const std::uint32_t crc = r.u32();
    if (len > r.remaining())
      throw std::runtime_error("checkpoint: truncated section " + name + " in " + path);
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(len));
    r.raw(payload.data(), payload.size());
    if (util::crc32(payload.data(), payload.size()) != crc)
      throw std::runtime_error("checkpoint: CRC mismatch in section " + name + " of " + path);
    sections_.emplace_back(std::move(name), std::move(payload));
  }
  r.expect_end();
}

bool CheckpointReader::has(const std::string& name) const noexcept {
  for (const auto& [n, bytes] : sections_)
    if (n == name) return true;
  return false;
}

util::StateReader CheckpointReader::section(const std::string& name) const {
  for (const auto& [n, bytes] : sections_)
    if (n == name) return util::StateReader(bytes);
  throw std::runtime_error("checkpoint: missing section " + name);
}

std::vector<std::string> CheckpointReader::names() const {
  std::vector<std::string> out;
  out.reserve(sections_.size());
  for (const auto& [n, bytes] : sections_) out.push_back(n);
  return out;
}

}  // namespace v6sonar::core
