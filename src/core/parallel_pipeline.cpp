// Implementation notes.
//
// Equivalence argument (docs/ARCHITECTURE.md has the long form): the
// serial detector emits timed-out events in (end-time, source) order
// and flush() then emits the rest in source order. Sharding by the
// aggregated source prefix puts every record of one detector key on
// one worker, in stream order, so each worker's private detector
// produces exactly the serial events of its key subset, in the same
// two sorted runs. The merger recovers the global order: a timed-out
// event finalizing at time D (D = last_us + timeout) is released once
// no shard can still produce an event finalizing before D — each
// shard's published watermark is a lower bound on its future
// finalization times, because a detector that has processed up to
// time T holds no state that could finalize before T.
//
// Ticks: a shard that receives no traffic never advances its
// watermark, which would stall the merge (and, for the IDS, the
// attribution barrier) indefinitely. The feeder therefore broadcasts
// bare clock ticks; workers apply them with ScanDetector::advance /
// ArtifactFilter::advance, which finalize exactly the events the
// serial detector would have finalized by that time. In filtered
// mode the detector clock only follows the filter's release frontier
// (the start of the still-buffered day) — the buffered day's records
// are behind it and must still be fed.

#include "core/parallel_pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <functional>
#include <iterator>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "util/metrics.hpp"
#include "util/spsc_ring.hpp"

namespace v6sonar::core {
namespace {

/// Shared pipeline telemetry (names in docs/OBSERVABILITY.md). The
/// feeder-side counters live here; per-shard ring stats are collected
/// in SpscRingStats and folded into named metrics once, at flush.
struct PipelineMetrics {
  util::metrics::Counter feed_records{"pipeline.feed.records"};
  util::metrics::Counter ticks{"pipeline.ticks"};
  util::metrics::Counter barriers{"pipeline.barriers"};
};

PipelineMetrics& pm() {
  static PipelineMetrics m;
  return m;
}

/// Control block of one checkpoint rendezvous: every worker runs the
/// visitor against its private state, and the last arrival releases
/// the waiting feeder thread. A worker that is already dead (error
/// path) arrives with its stored exception instead of running the
/// visitor, so the caller never deadlocks on a shard that cannot
/// comply — it gets the shard's real error rethrown.
struct BarrierCtl {
  const ParallelScanPipeline::ShardStateFn* fn = nullptr;
  std::mutex m;
  std::condition_variable cv;
  std::size_t remaining = 0;
  std::exception_ptr error;  ///< first visitor/shard failure

  void arrive(std::exception_ptr err) {
    std::lock_guard lk(m);
    if (err && !error) error = std::move(err);
    if (--remaining == 0) cv.notify_one();
  }
};

/// One parcel on a feeder->worker ring: a record, a bare clock advance
/// (tick=true, time rides in rec.ts_us), or a checkpoint barrier
/// (barrier non-null; scan pipeline, sharded mode only).
struct InItem {
  sim::LogRecord rec;
  bool tick = false;
  BarrierCtl* barrier = nullptr;
};

/// One parcel on a worker->merger ring.
struct OutItem {
  ScanEvent ev;
  std::uint16_t level = 0;  ///< ladder index; 0 when single-level
  bool flushed = false;     ///< emitted by flush(), not by timeout
};

/// FIFO of held-back events on one flat buffer: a vector plus a pop
/// cursor, compacted only when the dead prefix dominates the live
/// tail. Replaces std::deque in the merger — pushes reuse one grown
/// allocation instead of churning map/chunk blocks, and front() is
/// direct indexing into contiguous storage.
class OutQueue {
 public:
  [[nodiscard]] bool empty() const noexcept { return head_ == items_.size(); }
  [[nodiscard]] OutItem& front() noexcept { return items_[head_]; }
  [[nodiscard]] const OutItem& front() const noexcept { return items_[head_]; }
  void push_back(OutItem&& it) { items_.push_back(std::move(it)); }
  void pop_front() {
    ++head_;
    if (head_ == items_.size()) {
      items_.clear();
      head_ = 0;
    } else if (head_ >= 64 && head_ >= items_.size() - head_) {
      // Amortized O(1): moving the <= head_ survivors is charged to
      // the head_ pops that built up the dead prefix.
      items_.erase(items_.begin(), items_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

 private:
  std::vector<OutItem> items_;
  std::size_t head_ = 0;
};

/// One shard: a worker thread plus its two rings. The watermark
/// publishes the worker's detector clock — every timed-out event the
/// shard emits from now on finalizes at or after it — and jumps to
/// INT64_MAX when the shard's stream phase is over for good.
struct Shard {
  Shard(std::size_t in_cap, std::size_t out_cap) : in(in_cap), out(out_cap) {
    in.set_stats(&in_stats);
    out.set_stats(&out_stats);
  }

  util::SpscRing<InItem> in;
  util::SpscRing<OutItem> out;
  util::SpscRingStats in_stats;
  util::SpscRingStats out_stats;
  alignas(64) std::atomic<sim::TimeUs> watermark{INT64_MIN};
  std::thread thread;
  std::exception_ptr error;
  std::vector<FilterDayStats> day_stats;  ///< filter mode; closed in day order
  /// Events this shard's detector(s) emitted. Written only by the
  /// worker thread; read after join, when it folds into the per-shard
  /// pipeline.shard<N>.events counters.
  std::uint64_t events_emitted = 0;
};

using ShardList = std::vector<std::unique_ptr<Shard>>;

std::size_t shard_of(const net::Ipv6Address& src, int shard_len, std::size_t n) {
  std::size_t h = std::hash<net::Ipv6Address>{}(src.masked(shard_len));
  h ^= h >> 33;  // fmix64: the modulo must not correlate with the raw hash
  h *= 0xff51'afd7'ed55'8ccdULL;
  h ^= h >> 33;
  return h % n;
}

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<int>(hw) : 4;
}

/// Reject configurations whose rings could not function: a zero or
/// sub-minimum capacity either breaks the power-of-two rounding
/// contract or thrashes every hand-off through backpressure one
/// element at a time. 8 is SpscRing's own capacity floor. Messages
/// name the CLI flag alongside the field so a failed `v6sonar detect
/// --ring-cap 4` is actionable without reading this file.
void validate_parallel(const ParallelConfig& parallel, const char* who) {
  if (parallel.threads < 0)
    throw std::invalid_argument(std::string(who) + ": threads (--threads) must be >= 0, got " +
                                std::to_string(parallel.threads) +
                                " (0 means one per hardware thread)");
  if (parallel.ring_capacity < 8)
    throw std::invalid_argument(std::string(who) +
                                ": ring_capacity (--ring-cap) must be at least 8 slots, got " +
                                std::to_string(parallel.ring_capacity));
}

/// Items a worker pops from its input ring per blocking bulk consume;
/// also the span cap for the contiguous record runs handed to
/// feed_batch. Big enough to amortize the acquire/release pair and
/// keep the grouped detector path fed, small enough that a chunk of
/// InItems plus its record scratch stays comfortably L2-resident.
constexpr std::size_t kWorkerChunk = 1024;

/// The filter's release frontier at wall-time `ts`: records before the
/// start of ts's UTC day have been released, the rest are buffered.
sim::TimeUs day_start(sim::TimeUs ts) {
  return sim::us_from_seconds(sim::seconds_of(ts) / 86'400 * 86'400);
}

/// Drain a shard's output ring until it closes, discarding everything
/// — used on error paths so producers never block on a dead consumer.
void discard_outputs(ShardList& shards) {
  for (auto& sp : shards)
    while (!sp->out.drained())
      if (!sp->out.try_pop()) std::this_thread::yield();
}

/// K-way merge of per-shard event streams back into serial order.
///
/// Each (shard, level) stream arrives as two sorted runs: timed-out
/// events in (end-time, source) order, then flushed events in source
/// order. Stream-run events are released once every shard either
/// shows a later head or has published a watermark past the event's
/// finalization time; flush-run events are released once every shard
/// shows its flush head or is done. Optional barriers (the IDS
/// attribution passes) run once everything finalizing before their
/// time has been merged, and hold back everything after it.
class EventMerger {
 public:
  EventMerger(ShardList& shards, std::size_t levels, sim::TimeUs timeout_us,
              std::function<void(std::size_t, ScanEvent&&)> emit,
              util::SpscRing<sim::TimeUs>* barriers = nullptr,
              std::function<void(sim::TimeUs)> on_barrier = {},
              const char* metric_prefix = "pipeline")
      : shards_(shards),
        levels_(levels),
        timeout_us_(timeout_us),
        emit_(std::move(emit)),
        barriers_(barriers),
        on_barrier_(std::move(on_barrier)),
        metric_prefix_(metric_prefix),
        drain_hist_(util::metrics::register_metric(
            std::string(metric_prefix) + ".merger.drain_size",
            util::metrics::Kind::kHistogram)) {
    bufs_.resize(shards_.size() * levels_);
    wm_.assign(shards_.size(), INT64_MIN);
    drained_.assign(shards_.size(), false);
    scratch_.resize(256);
  }

  void run() {
    std::size_t idle = 0;
    for (;;) {
      const bool progress = step();
      if (finished()) {
        // Cold path: one registration + store per run. How many events
        // the merger had to hold back waiting on slower shards.
        namespace m = util::metrics;
        if (m::enabled())
          m::gauge_max(
              m::register_metric(std::string(metric_prefix_) + ".merger.queue_depth_hw",
                                 m::Kind::kGauge),
              buffered_hw_);
        return;
      }
      if (progress) {
        idle = 0;
      } else if (++idle < 256) {
        std::this_thread::yield();
      } else {
        // A long quiet stretch (slow producer, e.g. a live-capture
        // feed): park briefly instead of spinning a core. Batch runs
        // make progress nearly every step and never reach here.
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
  }

 private:
  [[nodiscard]] sim::TimeUs due(const OutItem& it) const noexcept {
    return it.ev.last_us + timeout_us_;
  }
  [[nodiscard]] OutQueue& buf(std::size_t s, std::size_t l) noexcept {
    return bufs_[s * levels_ + l];
  }

  void drain() {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (drained_[s]) continue;
      // The watermark must be read before the ring is drained: a
      // stale watermark only delays a release, a fresh one paired
      // with an undrained ring could release out of order.
      wm_[s] = shards_[s]->watermark.load(std::memory_order_acquire);
      // Bulk drain: one head release per scratch-load instead of one
      // per event, then route events to their (shard, level) queue.
      std::uint64_t popped = 0;
      for (std::size_t got;
           (got = shards_[s]->out.try_pop_n(scratch_.data(), scratch_.size())) > 0;) {
        for (std::size_t i = 0; i < got; ++i)
          buf(s, scratch_[i].level).push_back(std::move(scratch_[i]));
        popped += got;
      }
      if (popped) {
        buffered_ += popped;
        if (util::metrics::enabled()) util::metrics::observe(drain_hist_, popped);
      }
      if (shards_[s]->out.drained()) drained_[s] = true;
    }
    if (buffered_ > buffered_hw_) buffered_hw_ = buffered_;
  }

  /// Floor on the finalization time of any event not yet buffered
  /// here — the gate for barrier passes.
  [[nodiscard]] sim::TimeUs min_unmerged() const {
    sim::TimeUs m = INT64_MAX;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (!drained_[s]) m = std::min(m, wm_[s]);
      for (std::size_t l = 0; l < levels_; ++l) {
        const auto& b = bufs_[s * levels_ + l];
        if (!b.empty() && !b.front().flushed)
          m = std::min(m, b.front().ev.last_us + timeout_us_);
      }
    }
    return m;
  }

  bool step() {
    drain();
    bool progress = false;
    if (barriers_) {
      if (!pending_) pending_ = barriers_->try_pop();
      while (pending_ && min_unmerged() >= *pending_) {
        on_barrier_(*pending_);
        pending_ = barriers_->try_pop();
        progress = true;
      }
    }
    const sim::TimeUs gate = pending_ ? *pending_ : INT64_MAX;
    for (std::size_t l = 0; l < levels_; ++l)
      while (emit_one(l, gate)) progress = true;
    return progress;
  }

  /// Try to release the next event at ladder level `l`.
  bool emit_one(std::size_t l, sim::TimeUs gate) {
    // Stream run: the smallest (end-time, source) head, releasable
    // once no other shard can produce anything earlier.
    std::size_t best = SIZE_MAX;
    sim::TimeUs floor = INT64_MAX;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const auto& b = bufs_[s * levels_ + l];
      if (!b.empty()) {
        if (b.front().flushed) continue;  // this shard's stream run is over
        if (best == SIZE_MAX || stream_less(b.front(), buf(best, l).front())) best = s;
      } else if (!drained_[s]) {
        // Nothing visible from this shard yet: bounded by watermark.
        floor = std::min(floor, wm_[s]);
      }
    }
    if (best != SIZE_MAX) {
      OutItem& head = buf(best, l).front();
      // Strict <: a shard sitting exactly at the watermark may still
      // finalize an event at that very time with a smaller source.
      if (due(head) < floor && due(head) < gate) {
        emit_(l, std::move(head.ev));
        buf(best, l).pop_front();
        --buffered_;
        return true;
      }
      return false;
    }
    // Flush run: needs every shard's sorted-by-source head (or proof
    // there is none) before the smallest source can be released.
    std::size_t fbest = SIZE_MAX;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const auto& b = bufs_[s * levels_ + l];
      if (b.empty()) {
        if (!drained_[s]) return false;  // head still unknown
        continue;
      }
      if (fbest == SIZE_MAX || b.front().ev.source < buf(fbest, l).front().ev.source)
        fbest = s;
    }
    if (fbest == SIZE_MAX) return false;
    emit_(l, std::move(buf(fbest, l).front().ev));
    buf(fbest, l).pop_front();
    --buffered_;
    return true;
  }

  [[nodiscard]] bool stream_less(const OutItem& a, const OutItem& b) const noexcept {
    if (a.ev.last_us != b.ev.last_us) return a.ev.last_us < b.ev.last_us;
    return a.ev.source < b.ev.source;
  }

  [[nodiscard]] bool finished() const {
    if (pending_) return false;
    for (const bool d : drained_)
      if (!d) return false;
    for (const auto& b : bufs_)
      if (!b.empty()) return false;
    return true;
  }

  ShardList& shards_;
  std::size_t levels_;
  sim::TimeUs timeout_us_;
  std::function<void(std::size_t, ScanEvent&&)> emit_;
  util::SpscRing<sim::TimeUs>* barriers_;
  std::function<void(sim::TimeUs)> on_barrier_;
  const char* metric_prefix_;

  std::vector<OutQueue> bufs_;
  std::vector<OutItem> scratch_;  ///< bulk-drain staging buffer
  util::metrics::MetricId drain_hist_;
  std::vector<sim::TimeUs> wm_;
  std::vector<bool> drained_;
  std::optional<sim::TimeUs> pending_;
  std::uint64_t buffered_ = 0;     ///< events currently held back
  std::uint64_t buffered_hw_ = 0;  ///< high-water of buffered_
};

/// Feeder-side state shared by both pipelines: order validation,
/// shard routing, and the periodic tick broadcast.
///
/// Batching: stage() appends records to per-shard pending runs instead
/// of pushing them immediately; publish() then hands each run to its
/// ring with a single producer release (util::SpscRing::push_n). This
/// preserves the equivalence argument because (a) each shard's record
/// subsequence is exactly the serial one — staging never reorders
/// within a shard — and (b) every staged record is published before
/// any tick or barrier carrying a later-or-equal timestamp is pushed
/// (stage() publishes before its own tick broadcast; external barrier
/// points must call publish() first). Ticks themselves only affect
/// liveness — advance() finalizes exactly what would finalize anyway —
/// so deferring publication between them changes no per-ring content.
struct Feeder {
  int shard_len = 64;
  sim::TimeUs tick_interval = 0;
  sim::TimeUs next_tick = 0;
  sim::TimeUs last_ts = INT64_MIN;
  std::uint64_t fed = 0;
  std::vector<std::vector<InItem>> staged;  ///< pending run per shard

  /// Size the per-shard staging vectors once, at pipeline start-up, so
  /// stage() never re-checks them per record; pre-reserving skips the
  /// first few growth reallocations of every run.
  void init(std::size_t n_shards) {
    staged.resize(n_shards);
    for (auto& run : staged) run.reserve(1024);
  }

  /// Validate and stage one record; on crossing the tick boundary,
  /// publish the staged runs (the tick must not overtake records that
  /// precede it) and then broadcast the tick.
  void stage(ShardList& shards, const sim::LogRecord& r, const char* who) {
    if (r.ts_us < last_ts)
      throw std::invalid_argument(std::string(who) +
                                  ": records must be time-ordered (got ts " +
                                  std::to_string(r.ts_us) + " after " +
                                  std::to_string(last_ts) + ")");
    last_ts = r.ts_us;
    ++fed;
    staged[shard_of(r.src, shard_len, shards.size())].push_back(InItem{r, false});
    if (next_tick == 0)
      next_tick = r.ts_us + tick_interval;
    else if (r.ts_us >= next_tick) {
      publish(shards);
      broadcast_tick(shards, r.ts_us);
      next_tick = r.ts_us + tick_interval;
    }
  }

  /// Push every shard's staged run, one producer release per run.
  void publish(ShardList& shards) {
    std::uint64_t published = 0;
    for (std::size_t s = 0; s < staged.size(); ++s) {
      auto& run = staged[s];
      if (run.empty()) continue;
      shards[s]->in.push_n(run.data(), run.size());
      published += run.size();
      run.clear();
    }
    pm().feed_records.add(published);
  }

  void route(ShardList& shards, const sim::LogRecord& r, const char* who) {
    stage(shards, r, who);
    publish(shards);
  }

  void route_batch(ShardList& shards, std::span<const sim::LogRecord> batch, const char* who) {
    for (const auto& r : batch) stage(shards, r, who);
    publish(shards);
  }

  static void broadcast_tick(ShardList& shards, sim::TimeUs t) {
    pm().ticks.add();
    InItem item;
    item.rec.ts_us = t;
    item.tick = true;
    for (auto& sp : shards) sp->in.push(InItem{item});
  }
};

void join_all(ShardList& shards, std::thread& merger) {
  for (auto& sp : shards) sp->in.close();
  for (auto& sp : shards)
    if (sp->thread.joinable()) sp->thread.join();
  if (merger.joinable()) merger.join();
}

/// Fold the per-shard ring stats into named metrics. Called once at
/// flush, after the workers have joined, so every load is quiescent.
/// Registers the per-shard gauge names lazily — the shard count is a
/// runtime choice, so the names cannot be static handles.
void report_ring_stats(const ShardList& shards, const char* prefix) {
  namespace m = util::metrics;
  if (!m::enabled()) return;
  std::uint64_t in_blocked = 0, in_parks = 0, out_blocked = 0, out_parks = 0;
  std::uint64_t in_consumer_parks = 0, out_consumer_parks = 0;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const util::SpscRingStats& in = shards[s]->in_stats;
    const util::SpscRingStats& out = shards[s]->out_stats;
    std::string base = prefix;
    base += ".shard";
    base += std::to_string(s);
    m::gauge_max(m::register_metric(base + ".in_ring.occupancy_hw", m::Kind::kGauge),
                 in.occupancy_hw.load(std::memory_order_relaxed));
    m::gauge_max(m::register_metric(base + ".out_ring.occupancy_hw", m::Kind::kGauge),
                 out.occupancy_hw.load(std::memory_order_relaxed));
    m::add(m::register_metric(base + ".events", m::Kind::kCounter), shards[s]->events_emitted);
    in_blocked += in.producer_blocked.load(std::memory_order_relaxed);
    in_parks += in.producer_parks.load(std::memory_order_relaxed);
    in_consumer_parks += in.consumer_parks.load(std::memory_order_relaxed);
    out_blocked += out.producer_blocked.load(std::memory_order_relaxed);
    out_parks += out.producer_parks.load(std::memory_order_relaxed);
    out_consumer_parks += out.consumer_parks.load(std::memory_order_relaxed);
  }
  const std::string p = prefix;
  m::add(m::register_metric(p + ".in_ring.producer_blocked", m::Kind::kCounter), in_blocked);
  m::add(m::register_metric(p + ".in_ring.producer_parks", m::Kind::kCounter), in_parks);
  m::add(m::register_metric(p + ".in_ring.consumer_parks", m::Kind::kCounter),
         in_consumer_parks);
  m::add(m::register_metric(p + ".out_ring.producer_blocked", m::Kind::kCounter), out_blocked);
  m::add(m::register_metric(p + ".out_ring.producer_parks", m::Kind::kCounter), out_parks);
  m::add(m::register_metric(p + ".out_ring.consumer_parks", m::Kind::kCounter),
         out_consumer_parks);
}

void rethrow_first(const ShardList& shards, const std::exception_ptr& merger_error) {
  for (const auto& sp : shards)
    if (sp->error) std::rethrow_exception(sp->error);
  if (merger_error) std::rethrow_exception(merger_error);
}

}  // namespace

// ---------------------------------------------------------------- //

struct ParallelScanPipeline::Impl {
  std::unique_ptr<FunctionSink> owned_sink;  // legacy-adapter storage, if any
  EventSink* sink = nullptr;
  std::vector<EventSink*> shard_sinks;  ///< sharded mode: one borrowed sink per shard
  std::vector<FilterDayStats> merged_stats;
  ShardList shards;
  std::thread merger_thread;
  std::exception_ptr merger_error;
  Feeder feeder;
  bool flushed = false;

  ~Impl() { join_all(shards, merger_thread); }  // backstop; flush() normally joined

  /// Exactly one of `sink_in` (total-order mode) and `per_shard`
  /// (sharded-ownership mode) is set.
  void start(const DetectorConfig& config, const std::optional<ArtifactFilterConfig>& filter,
             const ParallelConfig& parallel, EventSink* sink_in,
             ShardSinkFactory per_shard = {}) {
    // Fail fast, on the caller's thread, with the serial classes' own
    // validation; the workers construct theirs later.
    { ScanDetector probe(config, [](ScanEvent&&) {}); }
    if (filter) {
      ArtifactFilter probe(*filter, [](const sim::LogRecord&) {});
    }
    validate_parallel(parallel, "ParallelScanPipeline");
    const bool sharded = static_cast<bool>(per_shard);
    sink = sink_in;

    feeder.shard_len = filter ? std::min(config.source_prefix_len, filter->source_prefix_len)
                              : config.source_prefix_len;
    feeder.tick_interval =
        parallel.tick_interval_us > 0 ? parallel.tick_interval_us : config.timeout_us;

    const int n = resolve_threads(parallel.threads);
    // Sharded mode never touches the output rings; keep them at the
    // ring's own floor instead of provisioning merger-sized buffers.
    const std::size_t out_cap =
        sharded ? 8 : std::max<std::size_t>(1024, parallel.ring_capacity / 4);
    shards.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      shards.push_back(std::make_unique<Shard>(parallel.ring_capacity, out_cap));
    feeder.init(shards.size());
    if (sharded) {
      // Resolve every per-shard sink on the caller's thread, before
      // any worker can race the factory.
      shard_sinks.reserve(shards.size());
      for (std::size_t s = 0; s < shards.size(); ++s) shard_sinks.push_back(&per_shard(s));
    }

    const util::metrics::MetricId batch_hist = util::metrics::register_metric(
        "pipeline.worker.batch_size", util::metrics::Kind::kHistogram);
    for (std::size_t s = 0; s < shards.size(); ++s) {
      Shard& sh = *shards[s];
      EventSink* shard_sink = sharded ? shard_sinks[s] : nullptr;
      sh.thread = std::thread([&sh, s, config, filter, batch_hist, shard_sink] {
        worker_main(sh, s, config, filter, batch_hist, shard_sink);
      });
    }
    if (sharded) return;  // no merger: workers rendezvous only at flush
    merger_thread = std::thread([this, timeout = config.timeout_us] {
      try {
        EventMerger merger(shards, 1, timeout,
                           [this](std::size_t, ScanEvent&& ev) { sink->on_event(std::move(ev)); });
        merger.run();
      } catch (...) {
        merger_error = std::current_exception();
        discard_outputs(shards);
      }
    });
  }

  /// Bulk-consuming worker loop. Runs are popped from the input ring
  /// in chunks (one consumer release per chunk), ticks are split from
  /// records, and each contiguous record span goes through the
  /// detector's (or filter's) batch path — recovering the grouped
  /// per-source apply inside the shard. Emitted events are buffered
  /// locally and flushed to the output ring with one producer release,
  /// and the watermark is published once per consumed chunk.
  ///
  /// Ordering stays intact under both batchings: the watermark is the
  /// detector clock at the *end* of the chunk, still a lower bound on
  /// every future finalization, and emitted events are pushed to the
  /// ring strictly before the watermark store — so the merger can
  /// never observe a watermark that promises events it cannot yet see.
  ///
  /// Sharded-ownership mode (`shard_sink` non-null): events bypass the
  /// output ring entirely and go straight into the shard's own sink,
  /// still on this thread — the sink sees this shard's events in the
  /// shard's serial order, and nothing else. Watermarks keep being
  /// published (they are cheap and keep the two modes' loops
  /// identical) but have no consumer.
  static void worker_main(Shard& sh, std::size_t shard_idx, const DetectorConfig& config,
                          const std::optional<ArtifactFilterConfig>& filter,
                          util::metrics::MetricId batch_hist, EventSink* shard_sink) {
    try {
      bool flushing = false;
      sim::TimeUs det_time = INT64_MIN;
      std::vector<OutItem> out_buf;
      const auto flush_out = [&] {
        if (out_buf.empty()) return;
        sh.out.push_n(out_buf.data(), out_buf.size());  // moving overload
        out_buf.clear();
      };
      ScanDetector det(config, shard_sink ? ScanDetector::EventFn([&sh, shard_sink](ScanEvent&& ev) {
        ++sh.events_emitted;
        shard_sink->on_event(std::move(ev));
      })
                                          : ScanDetector::EventFn([&](ScanEvent&& ev) {
                                              ++sh.events_emitted;
                                              out_buf.push_back(OutItem{std::move(ev), 0, flushing});
                                            }));
      std::unique_ptr<ArtifactFilter> af;
      if (filter)
        af = std::make_unique<ArtifactFilter>(
            *filter,
            [&](const sim::LogRecord& rr) {
              det.feed(rr);
              det_time = rr.ts_us;
            },
            [&](const FilterDayStats& s) { sh.day_stats.push_back(s); });

      std::vector<InItem> chunk(kWorkerChunk);
      std::vector<sim::LogRecord> recs(kWorkerChunk);
      for (std::size_t got; (got = sh.in.pop_n(chunk.data(), chunk.size())) > 0;) {
        if (util::metrics::enabled()) util::metrics::observe(batch_hist, got);
        std::size_t i = 0;
        while (i < got) {
          if (chunk[i].barrier) {
            // Checkpoint rendezvous: everything fed before the barrier
            // has been applied, so the visitor sees exactly the state
            // after the first K records — the quiesced point the
            // resume-equivalence contract is built on.
            flush_out();
            std::exception_ptr err;
            try {
              (*chunk[i].barrier->fn)(shard_idx, det, af.get());
            } catch (...) {
              err = std::current_exception();
            }
            chunk[i].barrier->arrive(std::move(err));
            ++i;
            continue;
          }
          if (chunk[i].tick) {
            const sim::TimeUs ts = chunk[i].rec.ts_us;
            if (!af) {
              det.advance(ts);
              det_time = ts;
            } else {
              af->advance(ts);
              det.advance(day_start(ts));
              det_time = std::max(det_time, day_start(ts));
            }
            ++i;
            continue;
          }
          // Contiguous record span up to the next tick/barrier (or
          // chunk end).
          std::size_t j = i;
          for (; j < got && !chunk[j].tick && !chunk[j].barrier; ++j) recs[j - i] = chunk[j].rec;
          const std::span<const sim::LogRecord> span(recs.data(), j - i);
          const sim::TimeUs ts = span.back().ts_us;
          if (!af) {
            det.feed_batch(span);
            det_time = ts;
          } else {
            af->feed_batch(span);
            // The detector clock follows the filter's release
            // frontier, never the raw stream clock: the open day's
            // records are still buffered behind it.
            det.advance(day_start(ts));
            det_time = std::max(det_time, day_start(ts));
          }
          i = j;
        }
        flush_out();  // events must be visible before the watermark
        sh.watermark.store(det_time, std::memory_order_release);
      }
      if (af) af->flush();  // releases the final day into the detector
      flush_out();          // final-day events precede the +inf watermark
      sh.watermark.store(INT64_MAX, std::memory_order_release);
      flushing = true;
      det.flush();
      flush_out();
    } catch (...) {
      sh.error = std::current_exception();
      // Keep the feeder unblocked; a barrier must still be arrived at
      // (with this shard's error) or with_shard_state would deadlock.
      while (auto it = sh.in.pop())
        if (it->barrier) it->barrier->arrive(sh.error);
    }
    sh.out.close();
  }

  void with_shard_state(const ParallelScanPipeline::ShardStateFn& fn) {
    if (flushed)
      throw std::logic_error("ParallelScanPipeline: with_shard_state after flush");
    if (sink)
      throw std::logic_error(
          "ParallelScanPipeline: with_shard_state requires sharded-ownership mode "
          "(total-order mode holds in-flight merger state)");
    // The barrier must not overtake records staged before it — same
    // publish-first rule as the tick broadcast.
    feeder.publish(shards);
    BarrierCtl ctl;
    ctl.fn = &fn;
    ctl.remaining = shards.size();
    pm().barriers.add();
    for (auto& sp : shards) {
      InItem item;
      item.barrier = &ctl;
      sp->in.push(std::move(item));
    }
    std::unique_lock lk(ctl.m);
    ctl.cv.wait(lk, [&] { return ctl.remaining == 0; });
    if (ctl.error) std::rethrow_exception(ctl.error);
  }

  void flush() {
    if (flushed) return;
    flushed = true;
    feeder.publish(shards);  // nothing stays staged past a flush
    join_all(shards, merger_thread);

    std::map<std::int64_t, FilterDayStats> by_day;
    for (const auto& sp : shards)
      for (const auto& s : sp->day_stats) {
        FilterDayStats& d = by_day[s.day];
        d.day = s.day;
        d.packets_in += s.packets_in;
        d.packets_dropped += s.packets_dropped;
        d.sources_seen += s.sources_seen;
        d.sources_dropped += s.sources_dropped;
        for (const auto& [port, n] : s.dropped_by_port) d.dropped_by_port[port] += n;
      }
    merged_stats.reserve(by_day.size());
    for (auto& [day, s] : by_day) merged_stats.push_back(std::move(s));

    report_ring_stats(shards, "pipeline");
    rethrow_first(shards, merger_error);
  }
};

namespace {

/// Legacy-ctor helper: validate + wrap the callable so the adapter
/// ctors keep throwing the pipeline's own null-sink message.
std::unique_ptr<FunctionSink> wrap_event_fn(ScanDetector::EventFn fn) {
  if (!fn) throw std::invalid_argument("ParallelScanPipeline: null sink");
  return std::make_unique<FunctionSink>(std::move(fn));
}

}  // namespace

ParallelScanPipeline::ParallelScanPipeline(const DetectorConfig& config,
                                           const ParallelConfig& parallel, EventSink& sink)
    : impl_(std::make_unique<Impl>()) {
  impl_->start(config, std::nullopt, parallel, &sink);
}

ParallelScanPipeline::ParallelScanPipeline(const DetectorConfig& config,
                                           const ArtifactFilterConfig& filter,
                                           const ParallelConfig& parallel, EventSink& sink)
    : impl_(std::make_unique<Impl>()) {
  impl_->start(config, filter, parallel, &sink);
}

ParallelScanPipeline::ParallelScanPipeline(const DetectorConfig& config,
                                           const ParallelConfig& parallel, EventFn fn)
    : impl_(std::make_unique<Impl>()) {
  impl_->owned_sink = wrap_event_fn(std::move(fn));
  impl_->start(config, std::nullopt, parallel, impl_->owned_sink.get());
}

ParallelScanPipeline::ParallelScanPipeline(const DetectorConfig& config,
                                           const ArtifactFilterConfig& filter,
                                           const ParallelConfig& parallel, EventFn fn)
    : impl_(std::make_unique<Impl>()) {
  impl_->owned_sink = wrap_event_fn(std::move(fn));
  impl_->start(config, filter, parallel, impl_->owned_sink.get());
}

ParallelScanPipeline::ParallelScanPipeline(const DetectorConfig& config,
                                           const ParallelConfig& parallel,
                                           ShardSinkFactory per_shard)
    : impl_(std::make_unique<Impl>()) {
  if (!per_shard) throw std::invalid_argument("ParallelScanPipeline: null shard sink factory");
  impl_->start(config, std::nullopt, parallel, nullptr, std::move(per_shard));
}

ParallelScanPipeline::ParallelScanPipeline(const DetectorConfig& config,
                                           const ArtifactFilterConfig& filter,
                                           const ParallelConfig& parallel,
                                           ShardSinkFactory per_shard)
    : impl_(std::make_unique<Impl>()) {
  if (!per_shard) throw std::invalid_argument("ParallelScanPipeline: null shard sink factory");
  impl_->start(config, filter, parallel, nullptr, std::move(per_shard));
}

ParallelScanPipeline::~ParallelScanPipeline() {
  try {
    impl_->flush();
  } catch (...) {  // a dropped pipeline must not terminate
  }
}

void ParallelScanPipeline::feed(const sim::LogRecord& r) {
  if (impl_->flushed) throw std::logic_error("ParallelScanPipeline: feed after flush");
  impl_->feeder.route(impl_->shards, r, "ParallelScanPipeline");
}

void ParallelScanPipeline::feed_batch(std::span<const sim::LogRecord> batch) {
  if (impl_->flushed) throw std::logic_error("ParallelScanPipeline: feed after flush");
  impl_->feeder.route_batch(impl_->shards, batch, "ParallelScanPipeline");
}

void ParallelScanPipeline::flush() { impl_->flush(); }

void ParallelScanPipeline::with_shard_state(const ShardStateFn& fn) {
  if (!fn) throw std::invalid_argument("ParallelScanPipeline: null shard state visitor");
  impl_->with_shard_state(fn);
}

int ParallelScanPipeline::threads() const noexcept {
  return static_cast<int>(impl_->shards.size());
}

std::uint64_t ParallelScanPipeline::packets_seen() const noexcept { return impl_->feeder.fed; }

const std::vector<FilterDayStats>& ParallelScanPipeline::filter_stats() const {
  // Before flush() the per-shard stats are still being appended to on
  // the worker threads — reading them here would be a data race, not
  // merely a stale view.
  if (!impl_->flushed)
    throw std::logic_error("ParallelScanPipeline: filter_stats before flush");
  return impl_->merged_stats;
}

// ---------------------------------------------------------------- //

struct ParallelIds::Impl {
  IdsConfig cfg;
  OrderMode order = OrderMode::kTotal;
  AlertSink sink;
  std::vector<std::vector<ScanEvent>> events;  ///< merged, serial order
  /// Sharded mode: each worker's private per-level slim events,
  /// [shard][level]; folded into `events` at flush.
  std::vector<std::vector<std::vector<OutItem>>> shard_events;
  AlertTracker tracker;
  std::unique_ptr<util::SpscRing<sim::TimeUs>> barriers;
  ShardList shards;
  std::thread merger_thread;
  std::exception_ptr merger_error;
  Feeder feeder;
  std::atomic<sim::TimeUs> final_now{0};
  sim::TimeUs next_pass = 0;
  bool flushed = false;

  ~Impl() { join_all(shards, merger_thread); }  // backstop; flush() normally joined

  void start(const IdsConfig& config, const ParallelConfig& parallel, AlertSink sink_in,
             OrderMode order_in) {
    if (!sink_in) throw std::invalid_argument("ParallelIds: null sink");
    if (config.adaptive.ladder.empty())
      throw std::invalid_argument("ParallelIds: empty aggregation ladder");
    validate_parallel(parallel, "ParallelIds");
    {  // borrow the serial front end's full validation
      StreamingIds probe(config, [](const IdsAlert&) {});
    }
    cfg = config;
    order = order_in;
    sink = std::move(sink_in);
    events.resize(cfg.adaptive.ladder.size());
    const bool sharded = order == OrderMode::kSharded;
    if (!sharded) barriers = std::make_unique<util::SpscRing<sim::TimeUs>>(1 << 12);

    feeder.shard_len = *std::min_element(cfg.adaptive.ladder.begin(), cfg.adaptive.ladder.end());
    feeder.tick_interval =
        parallel.tick_interval_us > 0 ? parallel.tick_interval_us : cfg.timeout_us;

    const int n = resolve_threads(parallel.threads);
    const std::size_t out_cap =
        sharded ? 8 : std::max<std::size_t>(1024, parallel.ring_capacity / 4);
    shards.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      shards.push_back(std::make_unique<Shard>(parallel.ring_capacity, out_cap));
    feeder.init(shards.size());
    if (sharded)
      shard_events.assign(shards.size(),
                          std::vector<std::vector<OutItem>>(cfg.adaptive.ladder.size()));

    const util::metrics::MetricId batch_hist = util::metrics::register_metric(
        "ids.pipeline.worker.batch_size", util::metrics::Kind::kHistogram);
    for (std::size_t s = 0; s < shards.size(); ++s) {
      Shard& sh = *shards[s];
      auto* collect = sharded ? &shard_events[s] : nullptr;
      sh.thread = std::thread(
          [&sh, config, batch_hist, collect] { worker_main(sh, config, batch_hist, collect); });
    }
    if (sharded) return;  // no merger, no barriers: one pass at flush
    merger_thread = std::thread([this] {
      try {
        EventMerger merger(
            shards, cfg.adaptive.ladder.size(), cfg.timeout_us,
            [this](std::size_t level, ScanEvent&& ev) { events[level].push_back(std::move(ev)); },
            barriers.get(),
            [this](sim::TimeUs t) {
              tracker.update(attribute_adaptive(events, cfg.adaptive), t, sink);
            },
            "ids.pipeline");
        merger.run();
        // The final pass the serial front end runs from flush().
        tracker.update(attribute_adaptive(events, cfg.adaptive),
                       final_now.load(std::memory_order_acquire), sink);
      } catch (...) {
        merger_error = std::current_exception();
        discard_outputs(shards);
      }
    });
  }

  /// Bulk-consuming IDS worker: same chunked pop / span split /
  /// buffered emit / per-chunk watermark scheme as the scan pipeline's
  /// worker, with every ladder level fed the same record span. Events
  /// of different levels interleave differently on the output ring
  /// than under per-record feeding, but the merger buffers and orders
  /// per (shard, level), so only the per-level subsequences matter —
  /// and those are unchanged.
  ///
  /// Sharded mode (`collect` non-null): events accumulate in the
  /// shard's private per-level vectors — each holding the shard's
  /// serial two-run order (timed-out events, then flush()ed events) —
  /// and the output ring stays untouched; flush() re-merges the runs.
  static void worker_main(Shard& sh, const IdsConfig& config, util::metrics::MetricId batch_hist,
                          std::vector<std::vector<OutItem>>* collect) {
    try {
      bool flushing = false;
      std::vector<OutItem> out_buf;
      const auto flush_out = [&] {
        if (out_buf.empty()) return;
        sh.out.push_n(out_buf.data(), out_buf.size());  // moving overload
        out_buf.clear();
      };
      std::vector<std::unique_ptr<ScanDetector>> dets;
      dets.reserve(config.adaptive.ladder.size());
      for (std::size_t i = 0; i < config.adaptive.ladder.size(); ++i)
        dets.push_back(std::make_unique<ScanDetector>(
            DetectorConfig{.source_prefix_len = config.adaptive.ladder[i],
                           .min_destinations = config.min_destinations,
                           .timeout_us = config.timeout_us},
            collect ? ScanDetector::EventFn([&sh, collect, &flushing, i](ScanEvent&& ev) {
              ++sh.events_emitted;
              (*collect)[i].push_back(
                  OutItem{slim_scan_event(ev), static_cast<std::uint16_t>(i), flushing});
            })
                    : ScanDetector::EventFn([&sh, &out_buf, &flushing, i](ScanEvent&& ev) {
                        ++sh.events_emitted;
                        out_buf.push_back(
                            OutItem{slim_scan_event(ev), static_cast<std::uint16_t>(i), flushing});
                      })));

      std::vector<InItem> chunk(kWorkerChunk);
      std::vector<sim::LogRecord> recs(kWorkerChunk);
      for (std::size_t got; (got = sh.in.pop_n(chunk.data(), chunk.size())) > 0;) {
        if (util::metrics::enabled()) util::metrics::observe(batch_hist, got);
        std::size_t i = 0;
        while (i < got) {
          if (chunk[i].tick) {
            for (auto& d : dets) d->advance(chunk[i].rec.ts_us);
            ++i;
            continue;
          }
          std::size_t j = i;
          for (; j < got && !chunk[j].tick; ++j) recs[j - i] = chunk[j].rec;
          const std::span<const sim::LogRecord> span(recs.data(), j - i);
          for (auto& d : dets) d->feed_batch(span);
          i = j;
        }
        flush_out();  // events must be visible before the watermark
        sh.watermark.store(chunk[got - 1].rec.ts_us, std::memory_order_release);
      }
      sh.watermark.store(INT64_MAX, std::memory_order_release);
      flushing = true;
      for (auto& d : dets) d->flush();
      flush_out();
    } catch (...) {
      sh.error = std::current_exception();
      while (sh.in.pop()) {
      }
    }
    sh.out.close();
  }

  /// Stage one record and fire the attribution barrier when it crosses
  /// the reattribution boundary. Staged runs are published before the
  /// barrier's tick so no ring sees the tick ahead of earlier records.
  void stage(const sim::LogRecord& r) {
    if (next_pass == 0) next_pass = r.ts_us + cfg.reattribution_period_us;
    feeder.stage(shards, r, "ParallelIds");
    if (r.ts_us >= next_pass) {
      if (order == OrderMode::kTotal) {
        // Exactly the serial trigger: a pass over everything finalized
        // strictly before this record. The tick drives every shard's
        // watermark to r.ts_us so the barrier can clear.
        feeder.publish(shards);
        Feeder::broadcast_tick(shards, r.ts_us);
        barriers->push(sim::TimeUs{r.ts_us});
        pm().barriers.add();
      }
      // Sharded mode trades the mid-stream pass away, but tracks the
      // trigger times so the flush pass uses the serial timestamp.
      next_pass = r.ts_us + cfg.reattribution_period_us;
    }
  }

  void feed(const sim::LogRecord& r) {
    if (flushed) throw std::logic_error("ParallelIds: feed after flush");
    stage(r);
    feeder.publish(shards);
  }

  void feed_batch(std::span<const sim::LogRecord> batch) {
    if (flushed) throw std::logic_error("ParallelIds: feed after flush");
    for (const auto& r : batch) stage(r);
    feeder.publish(shards);
  }

  void flush() {
    if (flushed) return;
    flushed = true;
    feeder.publish(shards);  // nothing stays staged past a flush
    final_now.store(next_pass, std::memory_order_release);
    join_all(shards, merger_thread);
    if (order == OrderMode::kSharded && !shard_events.empty()) {
      merge_shard_events();
      // The single attribution pass, at the same timestamp the serial
      // front end's flush pass would use. attribute_adaptive folds the
      // events order-insensitively (per-source sums; last-wins ASN is
      // restored by the re-merge above), so the blocklist matches the
      // serial one exactly; only the mid-stream alert cadence is lost.
      tracker.update(attribute_adaptive(events, cfg.adaptive), next_pass, sink);
    }
    report_ring_stats(shards, "ids.pipeline");
    rethrow_first(shards, merger_error);
  }

  /// Reconstruct each level's serial event order from the per-shard
  /// runs: every shard emits two sorted runs — timed-out events in
  /// (end-time, source) order, then flush()ed events in source order —
  /// and the serial detector's stream is exactly their merge.
  void merge_shard_events() {
    for (std::size_t l = 0; l < events.size(); ++l) {
      std::vector<ScanEvent> stream_run, flush_run;
      for (auto& per_level : shard_events)
        for (auto& it : per_level[l])
          (it.flushed ? flush_run : stream_run).push_back(std::move(it.ev));
      std::sort(stream_run.begin(), stream_run.end(), [](const ScanEvent& a, const ScanEvent& b) {
        if (a.last_us != b.last_us) return a.last_us < b.last_us;
        return a.source < b.source;
      });
      std::sort(flush_run.begin(), flush_run.end(),
                [](const ScanEvent& a, const ScanEvent& b) { return a.source < b.source; });
      events[l] = std::move(stream_run);
      events[l].insert(events[l].end(), std::make_move_iterator(flush_run.begin()),
                       std::make_move_iterator(flush_run.end()));
    }
    shard_events.clear();
  }
};

ParallelIds::ParallelIds(const IdsConfig& config, const ParallelConfig& parallel, AlertSink sink,
                         OrderMode order)
    : impl_(std::make_unique<Impl>()) {
  impl_->start(config, parallel, std::move(sink), order);
}

ParallelIds::~ParallelIds() {
  try {
    impl_->flush();
  } catch (...) {
  }
}

void ParallelIds::feed(const sim::LogRecord& r) { impl_->feed(r); }

void ParallelIds::feed_batch(std::span<const sim::LogRecord> batch) {
  impl_->feed_batch(batch);
}

void ParallelIds::flush() { impl_->flush(); }

int ParallelIds::threads() const noexcept { return static_cast<int>(impl_->shards.size()); }

const std::vector<Attribution>& ParallelIds::blocklist() const {
  // The merger thread mutates the tracker during barrier passes, so a
  // pre-flush read is a data race, not merely a stale view.
  if (!impl_->flushed) throw std::logic_error("ParallelIds: blocklist before flush");
  return impl_->tracker.blocklist();
}

}  // namespace v6sonar::core
