// CDN artifact pre-filter (§2.1, Appendix A.1).
//
// Port-agnostic "5-duplicate" rule: within each UTC day, a packet is a
// 5-duplicate if it is the 6th-or-later packet from its source /64 to
// the same (destination IP, destination port). Source /64s whose daily
// traffic is more than 30% 5-duplicates are dropped for that day.
//
// Streaming with one-day buffering: records are held until their day
// completes, then flagged sources' records are discarded and the rest
// released in order.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/state_codec.hpp"
#include "net/prefix.hpp"
#include "sim/record.hpp"
#include "util/arena.hpp"
#include "util/flat_hash.hpp"

namespace v6sonar::core {

struct ArtifactFilterConfig {
  /// A (dst IP, dst port) hit more than this many times per day marks
  /// subsequent packets as duplicates.
  std::uint32_t duplicate_threshold = 5;
  /// Sources above this duplicate fraction are removed.
  double max_duplicate_fraction = 0.30;
  /// Aggregation for the source accounting (paper: /64).
  int source_prefix_len = 64;
};

/// Per-day summary of what the filter removed — Appendix A.1's table.
struct FilterDayStats {
  std::int64_t day = 0;  ///< days since epoch (UTC)
  std::uint64_t packets_in = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t sources_seen = 0;
  std::uint64_t sources_dropped = 0;
  /// Packets dropped per destination port (proto-qualified key:
  /// proto number << 16 | port).
  std::unordered_map<std::uint32_t, std::uint64_t> dropped_by_port;
};

class ArtifactFilter : public StateCodec {
 public:
  using RecordSink = std::function<void(const sim::LogRecord&)>;
  using StatsSink = std::function<void(const FilterDayStats&)>;

  /// Clean records are forwarded to `out` in their original order
  /// (whole days at a time). `stats` (optional) receives one summary
  /// per completed day.
  ArtifactFilter(const ArtifactFilterConfig& config, RecordSink out, StatsSink stats = {});
  ~ArtifactFilter();

  /// Feed one record; records must be in non-decreasing time order.
  void feed(const sim::LogRecord& r);

  /// Feed a whole batch; exactly equivalent to feeding each record in
  /// turn (same ordering contract), but faster: source keys, their
  /// hashes, and the flow-key hashes are derived for the whole batch
  /// in one vectorizable pre-pass, and a two-stage prefetch pipeline
  /// hides the source-index and hit-table probe misses.
  void feed_batch(std::span<const sim::LogRecord> batch);

  /// Advance the clock without a packet: if `now` has moved past the
  /// buffered day, close it and release its clean records — exactly
  /// what the first record of a later day would have triggered. No-op
  /// if `now` is not ahead.
  void advance(sim::TimeUs now);

  /// Flush the final partial day.
  void flush();

  /// Freeze/thaw (core::StateCodec). Only the clock and the buffered
  /// (incomplete) day are serialized — the per-source hit tables are a
  /// pure function of the buffered records, so load() rebuilds them by
  /// replaying the buffer through the same accounting as feed().
  void save(util::StateWriter& w) const override;
  void load(util::StateReader& r) override;

 private:
  /// Below this many tracked sources the per-day tables are
  /// cache-resident and batch lookahead would be pure overhead.
  static constexpr std::size_t kPrefetchMinSources = 1'024;

  void close_day();

  /// (dst address, proto+port) composite flow key.
  struct FlowKey {
    net::Ipv6Address dst;
    std::uint32_t proto_port = 0;
    friend bool operator==(const FlowKey&, const FlowKey&) = default;
  };
  /// Mixed multiplier-lane combine (shared with the prefix hash): the
  /// old XOR of two independent hashes canceled structure between the
  /// address and port lanes; this one avalanches the 20-byte key as a
  /// whole, which the flat table's control tags depend on.
  struct FlowKeyHash {
    std::size_t operator()(const FlowKey& k) const noexcept {
      return static_cast<std::size_t>(
          net::prefix_hash_mix(k.dst.hi(), k.dst.lo(), k.proto_port));
    }
  };

  struct SourceDay {
    /// Hit-count storage comes from the filter's pool: a source's day
    /// closing hands its array to the next day's sources.
    explicit SourceDay(util::SlabPool* pool) noexcept : hits(pool) {}

    std::uint64_t packets = 0;
    std::uint64_t duplicates = 0;
    bool dropped = false;  ///< close_day verdict, read by the release loop
    util::FlatMap<FlowKey, std::uint32_t, FlowKeyHash> hits;
  };

  /// feed() with the source key, its hash, and the flow-key hash
  /// already derived — the single per-record update both feed paths
  /// funnel through.
  void feed_one(const sim::LogRecord& r, const net::Ipv6Prefix& key, std::size_t key_hash,
                std::size_t flow_hash);
  [[nodiscard]] SourceDay* new_day();
  void delete_day(SourceDay* sd) noexcept;
  /// Destroy all SourceDay objects and empty the index, keeping its
  /// slot array (day-over-day population is similar).
  void destroy_days() noexcept;

  ArtifactFilterConfig config_;
  net::PrefixKeyDeriver deriver_;
  RecordSink out_;
  StatsSink stats_;
  std::int64_t current_day_ = INT64_MIN;
  std::deque<sim::LogRecord> buffer_;
  util::SlabPool pool_;  // declared before sources_: destroyed after its users

  // Flat open-addressed index of pool-allocated per-day source
  // accounting, mirroring the detector's state index: flat so the
  // batch path can prefetch from the precomputed hash alone, pointers
  // so growth never moves a SourceDay.
  util::FlatMap<net::Ipv6Prefix, SourceDay*> sources_;
  sim::TimeUs last_ts_ = INT64_MIN;

  // feed_batch() derivation scratch (capacity persists across batches).
  std::vector<net::Ipv6Prefix> batch_keys_;
  std::vector<std::size_t> batch_key_hashes_;
  std::vector<std::size_t> batch_flow_hashes_;
};

/// Proto-qualified port key used in FilterDayStats::dropped_by_port.
[[nodiscard]] constexpr std::uint32_t proto_port_key(wire::IpProto proto,
                                                     std::uint16_t port) noexcept {
  return static_cast<std::uint32_t>(static_cast<std::uint8_t>(proto)) << 16 | port;
}

}  // namespace v6sonar::core
