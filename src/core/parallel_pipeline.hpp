// Sharded parallel detection pipeline.
//
// Detection state is keyed purely by the aggregated source prefix
// (§2.2), so the record stream shards cleanly by source: every record
// of one aggregated source visits exactly one worker, and each worker
// runs a private, completely ordinary serial detector over its shard.
// The feeder thread hash-partitions records across bounded SPSC rings
// (util/spsc_ring.hpp). Two event-delivery disciplines are offered:
//
//   OrderMode::kTotal — a merger thread k-way merges the finalized
//   events of all shards back into one stream ordered by event
//   end-time: byte-identical, ordering included, to what the
//   single-threaded detector would have produced. Downstream code
//   cannot tell the difference, at the cost of every event funneling
//   through one thread.
//
//   OrderMode::kSharded — each worker owns its slice of state end to
//   end: detection, artifact filtering, expiry, and a caller-supplied
//   per-shard EventSink chain, all on the worker thread. Workers
//   never rendezvous until flush(). Event total order across shards
//   is relaxed (each shard's own stream stays serial-ordered);
//   mergeable sinks (analysis::Analyzer::merge) recover bit-identical
//   *reports* at flush. docs/ARCHITECTURE.md §3.5 has the argument.
//
// Three front ends are provided, mirroring the serial ones:
//   ParallelScanPipeline           ==  ScanDetector
//   ParallelScanPipeline(+filter)  ==  ArtifactFilter -> ScanDetector
//   ParallelIds                    ==  StreamingIds
//
// Threading contract: feed()/flush() must be called from one thread;
// in total-order mode the event/alert sink runs on the internal
// merger thread, in sharded mode each per-shard sink runs on its
// worker thread (sinks must not call back into the pipeline). flush()
// joins all threads and rethrows the first worker or sink exception,
// if any.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/artifact_filter.hpp"
#include "core/detector.hpp"
#include "core/streaming_ids.hpp"
#include "sim/record.hpp"

namespace v6sonar::core {

/// Event-delivery discipline of the parallel front ends (see the file
/// comment). kTotal restores the serial total order through a merger
/// thread; kSharded keeps events on their worker and rendezvouses
/// only at flush.
enum class OrderMode { kTotal, kSharded };

struct ParallelConfig {
  /// Worker threads (shards). 0 = one per hardware thread.
  int threads = 0;
  /// Records buffered per worker ring (rounded up to a power of two).
  /// Must be at least 8 — the ring's own capacity floor; pipeline
  /// constructors throw std::invalid_argument on smaller values.
  std::size_t ring_capacity = 1 << 14;
  /// Broadcast a clock tick to every shard after this much stream
  /// time, so shards that receive no traffic still advance and the
  /// merger's reorder buffer stays bounded. 0 = one detection timeout.
  sim::TimeUs tick_interval_us = 0;
};

/// Sharded equivalent of one ScanDetector (optionally fronted by the
/// §2.1 artifact filter): same events, same order, N cores.
class ParallelScanPipeline {
 public:
  /// Legacy callable sink; wrapped in a FunctionSink internally.
  using EventFn = ScanDetector::EventFn;

  /// Sharded-ownership sink factory: called once per shard, on the
  /// constructing thread, before any worker starts. The returned sink
  /// is borrowed (must outlive the pipeline), receives that shard's
  /// events on the worker thread in the shard's serial order, and is
  /// never flush()ed by the pipeline — merge and flush the per-shard
  /// chains after ParallelScanPipeline::flush() returns.
  using ShardSinkFactory = std::function<EventSink&(std::size_t shard)>;

  /// Plain sharded detection. `sink` is borrowed (must outlive the
  /// pipeline), receives events on the internal merger thread, and is
  /// never flush()ed by the pipeline — flush it after
  /// ParallelScanPipeline::flush() returns.
  ParallelScanPipeline(const DetectorConfig& config, const ParallelConfig& parallel,
                       EventSink& sink);

  /// Sharded ArtifactFilter -> ScanDetector chain. Each shard filters
  /// its own sources (the 5-duplicate rule is per-source, so per-shard
  /// filtering decides exactly as the serial filter does); per-day
  /// filter statistics are summed across shards.
  ParallelScanPipeline(const DetectorConfig& config, const ArtifactFilterConfig& filter,
                       const ParallelConfig& parallel, EventSink& sink);

  /// Legacy adapters: wrap `fn` in an owned FunctionSink.
  ParallelScanPipeline(const DetectorConfig& config, const ParallelConfig& parallel, EventFn fn);
  ParallelScanPipeline(const DetectorConfig& config, const ArtifactFilterConfig& filter,
                       const ParallelConfig& parallel, EventFn fn);

  /// Sharded-ownership mode (OrderMode::kSharded): no merger thread;
  /// each worker drives its own sink from `per_shard`. Event total
  /// order across shards is relaxed — pair with mergeable sinks
  /// (analysis::Analyzer) when downstream output must match serial.
  ParallelScanPipeline(const DetectorConfig& config, const ParallelConfig& parallel,
                       ShardSinkFactory per_shard);
  ParallelScanPipeline(const DetectorConfig& config, const ArtifactFilterConfig& filter,
                       const ParallelConfig& parallel, ShardSinkFactory per_shard);

  /// Per-shard state visitor for the checkpoint rendezvous: invoked on
  /// the shard's own worker thread against its private detector and
  /// (in filtered mode) artifact filter; `filter` is nullptr in plain
  /// mode. The visitor may read or mutate the state freely — the
  /// worker is quiesced for the duration of its call.
  using ShardStateFn =
      std::function<void(std::size_t shard, ScanDetector& detector, ArtifactFilter* filter)>;

  ~ParallelScanPipeline();
  ParallelScanPipeline(const ParallelScanPipeline&) = delete;
  ParallelScanPipeline& operator=(const ParallelScanPipeline&) = delete;

  /// Feed one record (non-decreasing time order, one thread).
  void feed(const sim::LogRecord& r);

  /// Feed a whole batch (same contract). The feeder partitions the
  /// batch into per-shard runs and publishes each run to its ring with
  /// a single producer release — identical per-ring sequences to
  /// feeding one record at a time, so the output (order included) is
  /// unchanged; only the synchronization per record is cheaper.
  void feed_batch(std::span<const sim::LogRecord> batch);

  /// Close the shards, join all threads, rethrow any worker/sink
  /// error. The sink has received every event once this returns.
  void flush();

  /// Checkpoint rendezvous (sharded-ownership mode only): publish any
  /// staged records, push a barrier through every shard's ring, and
  /// run `fn(shard, detector, filter)` on each worker thread once that
  /// worker has consumed everything fed before the barrier. Blocks the
  /// feeding thread until every shard has run the visitor, then
  /// rethrows the first visitor exception, if any. Used both to save
  /// per-shard state mid-stream (checkpoint) and to load it before the
  /// first record (resume). Throws std::logic_error in total-order
  /// mode — the merger holds in-flight events there, so a quiesced
  /// point that captures all state does not exist — and after flush().
  void with_shard_state(const ShardStateFn& fn);

  [[nodiscard]] int threads() const noexcept;
  /// Records fed into the pipeline (pre-filter).
  [[nodiscard]] std::uint64_t packets_seen() const noexcept;
  /// Merged per-day artifact-filter statistics, sorted by day; empty
  /// in plain (unfiltered) mode. Only valid after flush() — worker
  /// threads still append to the per-shard stats before that, so this
  /// throws std::logic_error on a pre-flush call instead of racing.
  [[nodiscard]] const std::vector<FilterDayStats>& filter_stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Sharded equivalent of StreamingIds: the ladder detectors shard by
/// the coarsest ladder prefix. In total-order mode the periodic
/// attribution pass runs on the merger thread at exactly the serial
/// trigger points, and the alert stream (order, is_new flags,
/// timestamps) is identical. In sharded mode workers accumulate their
/// slim events privately and one attribution pass runs at flush():
/// the final blocklist() is identical to serial, but the mid-stream
/// alert cadence is traded away — every alert is emitted from the
/// single flush-time pass.
class ParallelIds {
 public:
  using AlertSink = AlertTracker::AlertSink;

  ParallelIds(const IdsConfig& config, const ParallelConfig& parallel, AlertSink sink,
              OrderMode order = OrderMode::kTotal);

  ~ParallelIds();
  ParallelIds(const ParallelIds&) = delete;
  ParallelIds& operator=(const ParallelIds&) = delete;

  void feed(const sim::LogRecord& r);
  /// Batched feed; same output (attribution barriers trigger at the
  /// same records) with per-shard run publication as in
  /// ParallelScanPipeline::feed_batch.
  void feed_batch(std::span<const sim::LogRecord> batch);
  void flush();

  [[nodiscard]] int threads() const noexcept;
  /// Final blocklist. Only valid after flush() — the merger thread
  /// mutates the tracker during barrier passes before that, so this
  /// throws std::logic_error on a pre-flush call instead of racing.
  [[nodiscard]] const std::vector<Attribution>& blocklist() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace v6sonar::core
