#include "core/detector.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <memory>
#include <new>
#include <stdexcept>
#include <utility>

#include "util/metrics.hpp"
#include "util/timebase.hpp"

namespace v6sonar::core {

namespace {

/// Lazily-registered handles for the detector's fast-path telemetry
/// (docs/OBSERVABILITY.md documents each name). One guard check per
/// dm() call; all record calls are gated on metrics::enabled().
struct DetectorMetrics {
  util::metrics::Counter batch_calls{"detector.batch.calls"};
  util::metrics::Counter batch_records{"detector.batch.records"};
  util::metrics::Counter grouped_batches{"detector.batch.grouped.batches"};
  util::metrics::Counter grouped_records{"detector.batch.grouped.records"};
  util::metrics::Counter grouped_runs{"detector.batch.grouped.runs"};
  util::metrics::Counter serial_records{"detector.batch.serial.records"};
  // Guard-failure breakdown: why a batch fell back to the serial loop.
  util::metrics::Counter fb_small{"detector.batch.fallback.small_batch"};
  util::metrics::Counter fb_expiry{"detector.batch.fallback.expiry_due"};
  util::metrics::Counter fb_span{"detector.batch.fallback.span_exceeds_timeout"};
  util::metrics::Counter fb_behind{"detector.batch.fallback.starts_before_last"};
  util::metrics::Counter fb_unsorted{"detector.batch.fallback.unsorted"};
  util::metrics::Counter expiry_pops{"detector.expiry.pops"};
  util::metrics::Counter expiry_stale{"detector.expiry.stale_requeues"};
  util::metrics::Counter expiry_dead{"detector.expiry.dead_keys"};
  util::metrics::Counter expiry_finalized{"detector.expiry.finalized"};
  util::metrics::Counter events_emitted{"detector.events.emitted"};
  // Hot/cold tiering traffic and high-water tier sizes (gauges are
  // high-water marks; noted per sweep/batch, not per record).
  util::metrics::Counter demotions{"detector.state.demotions"};
  util::metrics::Counter promotions{"detector.state.promotions"};
  util::metrics::Gauge hot_sources{"detector.state.hot_sources"};
  util::metrics::Gauge cold_sources{"detector.state.cold_sources"};
};

DetectorMetrics& dm() {
  static DetectorMetrics m;
  return m;
}

void validate_config(const DetectorConfig& config) {
  if (config.source_prefix_len < 0 || config.source_prefix_len > 128)
    throw std::invalid_argument("ScanDetector: bad aggregation length");
  if (config.min_destinations == 0)
    throw std::invalid_argument("ScanDetector: min_destinations must be positive");
  if (config.timeout_us <= 0) throw std::invalid_argument("ScanDetector: bad timeout");
  if (config.demote_idle_us < 0 ||
      (config.demote_idle_us > 0 && config.demote_idle_us >= config.timeout_us))
    throw std::invalid_argument(
        "ScanDetector: demote_idle_us must be 0 or in (0, timeout_us)");
}

}  // namespace

ScanDetector::ScanDetector(const DetectorConfig& config, EventSink& sink)
    : config_(config), deriver_(config.source_prefix_len), sink_(&sink) {
  validate_config(config_);
}

ScanDetector::ScanDetector(const DetectorConfig& config, EventFn fn)
    : config_(config), deriver_(config.source_prefix_len) {
  validate_config(config_);
  if (!fn) throw std::invalid_argument("ScanDetector: null sink");
  owned_sink_ = std::make_unique<FunctionSink>(std::move(fn));
  sink_ = owned_sink_.get();
}

ScanDetector::~ScanDetector() {
  // States are pool blocks holding live containers; destroy them
  // explicitly (clear()ing the index only drops the pointers).
  states_.for_each([this](const net::Ipv6Prefix&, SourceState* st) { delete_state(st); });
  cold_.for_each([](const net::Ipv6Prefix&, ColdState* cs) { delete cs; });
}

ScanDetector::SourceState* ScanDetector::new_state() {
  void* p = pool_.acquire(sizeof(SourceState));
  return new (p) SourceState(&pool_);
}

void ScanDetector::delete_state(SourceState* st) noexcept {
  st->~SourceState();
  pool_.release(st, sizeof(SourceState));
}

void ScanDetector::feed(const sim::LogRecord& r) {
  const net::PrefixKeyDeriver::Derived d = deriver_(r.src);
  feed_one(r, d.key, d.hash);
}

void ScanDetector::feed_one(const sim::LogRecord& r, const net::Ipv6Prefix& key,
                            std::size_t key_hash) {
  if (r.ts_us < last_ts_)
    throw std::invalid_argument("ScanDetector: records must be time-ordered");
  last_ts_ = r.ts_us;
  ++packets_seen_;

  expire_up_to(r.ts_us);
  if (config_.demote_idle_us > 0) demote_up_to(r.ts_us);

  SourceState*& slot = states_.insert_hashed(key, key_hash);
  if (slot == nullptr) {
    // A miss is either a brand-new source or a cold one waking up. A
    // cold source found here cannot have gapped out: expire_up_to()
    // just finalized every source (either tier) whose true due time
    // precedes r.ts_us, so the surviving cold record continues its
    // event — rehydrate it and skip the split check.
    if (SourceState* thawed = promote(key, key_hash)) {
      slot = thawed;
    } else {
      slot = new_state();
      slot->first_us = r.ts_us;
      slot->asn = r.src_asn;
      expiries_.push(Expiry{r.ts_us + config_.timeout_us, key, key_hash});
      if (config_.demote_idle_us > 0)
        demotions_.push(Expiry{r.ts_us + config_.demote_idle_us, key, key_hash});
    }
  } else if (r.ts_us - slot->last_us > config_.timeout_us) {
    // The previous event of this source ended; finalize it and start a
    // fresh one in place, reusing its container storage.
    finalize(key, *slot);
    slot->restart(r.ts_us, r.src_asn);
    expiries_.push(Expiry{r.ts_us + config_.timeout_us, key, key_hash});
  }
  SourceState& st = *slot;
  st.last_us = r.ts_us;
  ++st.packets;
  if (st.dsts.insert(r.dst) && r.dst_in_dns) ++st.dsts_in_dns;
  ++st.ports[r.dst_port];
  if (r.ts_us >= st.week_next_us || st.week_slot == nullptr) {
    const std::int64_t week = util::window_week(sim::seconds_of(r.ts_us));
    st.week_slot = &st.weekly[static_cast<std::uint32_t>(week)];
    // Exact validity bound: the first microsecond of week+1. Weeks
    // before the window start (truncating division) get no bound and
    // recompute every record — correct, and never hit in practice.
    st.week_next_us =
        week >= 0 && r.ts_us >= 0
            ? sim::us_from_seconds(util::kWindowStart + (week + 1) * util::kSecondsPerWeek)
            : INT64_MIN;
  }
  ++*st.week_slot;
}

void ScanDetector::feed_batch(std::span<const sim::LogRecord> batch) {
  const std::size_t n = batch.size();
  const bool counting = util::metrics::enabled();
  if (counting) {
    dm().batch_calls.add();
    dm().batch_records.add(n);
  }
  // Demotion is output-invisible (no event, no expiry-heap change), so
  // sweeping at batch start keeps the grouped path — which never calls
  // the per-record sweep — demoting on schedule. A demoted source with
  // records inside this batch simply promotes again at its first probe.
  if (config_.demote_idle_us > 0 && n > 0) demote_up_to(batch[0].ts_us);
  if (counting) {
    dm().hot_sources.note(states_.size());
    dm().cold_sources.note(cold_.size());
  }
  if (n < 2) {
    if (counting) {
      dm().fb_small.add();
      dm().serial_records.add(n);
    }
    feed_serial(batch);
    return;
  }
  // The grouped fast path reorders work across sources, which is only
  // observable if something *finalizes* during the batch. Three guards
  // prove nothing can:
  //
  //  1. The batch is internally time-sorted and starts at or after
  //     last_ts_ (also ensures feed()'s order check would pass, so the
  //     reordered path throws exactly when the serial one would — by
  //     falling back to it).
  //  2. No pre-existing source's *true* due time (last_us + timeout)
  //     falls before the batch's last timestamp, so expire_up_to()
  //     would finalize nothing. Every live event keeps a heap entry at
  //     <= last_us + timeout (pushed at event start; stale pops
  //     re-push at the true due time), so this also rules out a
  //     timeout *split* for any pre-existing source: a gap > timeout
  //     inside the batch would imply a true due time before the batch
  //     end. Stale reminders due before the batch end are refined in
  //     place by refine_expiries() rather than treated as failures.
  //  3. The batch spans at most the timeout, so a source first seen
  //     inside the batch cannot gap out within it, and entries pushed
  //     during the batch (due >= batch[0] + timeout >= batch end)
  //     cannot fire within it either.
  //
  // Under the guards no sink_ call, erase, or restart happens, and
  // per-source updates commute across sources — grouping by source is
  // output-identical to the serial order. (The heap then holds the
  // same multiset of entries as after the serial order, and Expiry's
  // comparator is a total order, so later pop order is identical too.)
  //
  // Guards 2 and 3 are O(1) and checked here; guard 1's scan is fused
  // into feed_grouped()'s bucketing pass (which mutates only batch
  // scratch, so bailing out to the serial path mid-pass is safe — the
  // serial path then throws exactly where feed() would).
  const sim::TimeUs last = batch[n - 1].ts_us;
  const bool spans_timeout = last - batch[0].ts_us > config_.timeout_us;
  const bool starts_behind = batch[0].ts_us < last_ts_;
  // Guard 2 would go stale-positive on any long steady stream: after
  // one timeout of stream time the heap always holds *stale* reminders
  // due before the batch end (their sources were active since, so the
  // true due time is later), and a literal heap-top check would exile
  // every subsequent batch to the serial path. refine_expiries() pops
  // those reminders and re-queues them at their current true due time
  // — the exact no-output refinement expire_up_to() performs — and
  // only reports a genuine guard failure when some source could
  // actually finalize or split within the batch.
  const bool expiry_due =
      !spans_timeout && !starts_behind && !refine_expiries(last);
  if (!expiry_due && !spans_timeout && !starts_behind && feed_grouped(batch)) {
    if (counting) {
      dm().grouped_batches.add();
      dm().grouped_records.add(n);
      dm().grouped_runs.add(runs_.size());
    }
    return;
  }
  if (counting) {
    // One reason per fallback. Span/behind report first — the expiry
    // refinement only runs once they hold, so a true expiry_due here
    // always means a possible genuine finalization inside the batch.
    if (spans_timeout)
      dm().fb_span.add();
    else if (starts_behind)
      dm().fb_behind.add();
    else if (expiry_due)
      dm().fb_expiry.add();
    else
      dm().fb_unsorted.add();
    dm().serial_records.add(n);
  }
  feed_serial(batch);
}

void ScanDetector::derive_batch(std::span<const sim::LogRecord> batch) {
  const std::size_t n = batch.size();
  batch_keys_.resize(n);
  batch_hashes_.resize(n);
  // Tight mask+multiply pre-pass over the source addresses: no table
  // probes, no branches beyond the deriver's level check (constant per
  // detector), so the compiler can pipeline/unroll it freely. Every
  // downstream probe, prefetch, and expiry entry reuses these values —
  // the "hash once per record" half of the hot-path contract.
  for (std::size_t i = 0; i < n; ++i) {
    const net::PrefixKeyDeriver::Derived d = deriver_(batch[i].src);
    batch_keys_[i] = d.key;
    batch_hashes_[i] = d.hash;
  }
}

void ScanDetector::feed_serial(std::span<const sim::LogRecord> batch) {
  derive_batch(batch);
  // With few tracked sources the per-source tables are cache-resident
  // and lookahead would be pure overhead (an extra probe per record);
  // only a large state spills the caches and makes the prefetch
  // pipeline pay.
  if (states_.size() < kPrefetchMinSources) {
    for (std::size_t i = 0; i < batch.size(); ++i)
      feed_one(batch[i], batch_keys_[i], batch_hashes_[i]);
    return;
  }
  // Two-stage software pipeline, ~12 records ≈ one memory round-trip
  // apart: the far stage prefetches the state-index slot for record
  // i+2L so the near stage's find() at i+L hits cache; the near
  // stage then prefetches that source's destination-set and port-map
  // slots so the update at i hits all three. Hints are read-only
  // (prefetch + find), so output is identical to feed().
  constexpr std::size_t kLookahead = 12;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (i + 2 * kLookahead < batch.size())
      states_.prefetch_hash(batch_hashes_[i + 2 * kLookahead]);
    if (i + kLookahead < batch.size()) {
      const auto& near = batch[i + kLookahead];
      if (SourceState* const* p =
              states_.find_hashed(batch_keys_[i + kLookahead], batch_hashes_[i + kLookahead])) {
        (*p)->dsts.prefetch(near.dst);
        (*p)->ports.prefetch(near.dst_port);
      }
    }
    feed_one(batch[i], batch_keys_[i], batch_hashes_[i]);
  }
}

bool ScanDetector::feed_grouped(std::span<const sim::LogRecord> batch) {
  const std::size_t n = batch.size();

  // Pass 0 — derive every record's aggregation key and hash in one
  // vectorizable sweep; passes 1 and 3 (and the serial fallback, which
  // re-derives only if this pass was skipped) consume the arrays.
  derive_batch(batch);

  // Pass 1 — bucket records by source with a batch-local
  // open-addressed index (run_slots_ maps the key hash to an index
  // into runs_), accumulating per-run aggregates: length, first/last
  // timestamp, first record's ASN. The bucketing reuses the top bits
  // of the precomputed state-index hash — the bottom bits pick the
  // state-index slot, so both ends of the same value are spent and no
  // extra hash is computed per record. The pass also verifies the
  // batch is internally time-sorted (guard 1); a false return means
  // nothing was applied.
  const std::size_t cap = std::bit_ceil(2 * n);
  const int shift = 64 - std::countr_zero(cap);
  if (run_slots_.size() < cap) run_slots_.assign(cap, 0);
  if (++batch_epoch_ == 0) {
    // Epoch wrapped: stale stamps could alias as live. Once per 2^32
    // batches, pay the full reset.
    std::fill(run_slots_.begin(), run_slots_.end(), 0);
    batch_epoch_ = 1;
  }
  const std::uint64_t live = static_cast<std::uint64_t>(batch_epoch_) << 32;
  runs_.clear();
  runs_.reserve(64);
  batch_run_.resize(n);
  sim::TimeUs prev_ts = batch[0].ts_us;
  bool sorted = true;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& r = batch[i];
    sorted &= r.ts_us >= prev_ts;
    prev_ts = r.ts_us;
    const net::Ipv6Prefix& key = batch_keys_[i];
    const std::uint64_t h = batch_hashes_[i];
    std::size_t s = static_cast<std::size_t>(h >> shift);
    const std::size_t mask = cap - 1;
    for (;; s = (s + 1) & mask) {
      const std::uint64_t slot = run_slots_[s];
      if ((slot & ~0xFFFF'FFFFULL) != live) {
        const std::uint32_t run = static_cast<std::uint32_t>(runs_.size());
        run_slots_[s] = live | run;
        runs_.push_back(Run{key, h, 1, 0, r.ts_us, r.ts_us, r.src_asn});
        batch_run_[i] = run;
        break;
      }
      const std::uint32_t run = static_cast<std::uint32_t>(slot);
      Run& rn = runs_[run];
      if (rn.key == key) {
        ++rn.len;
        rn.last_ts = r.ts_us;
        batch_run_[i] = run;
        break;
      }
    }
  }
  if (!sorted) return false;

  // Pass 2 — scatter the fields the apply loop needs into
  // run-contiguous order (offset = prefix sum of run lengths), so each
  // run reads its records sequentially instead of striding through the
  // batch.
  std::uint32_t off = 0;
  for (Run& rn : runs_) {
    rn.offset = off;
    off += rn.len;
  }
  batch_entries_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& r = batch[i];
    Run& rn = runs_[batch_run_[i]];
    batch_entries_[rn.offset++] =
        BatchEntry{r.dst, DstHash{}(r.dst), r.ts_us, r.dst_port, r.dst_in_dns};
  }
  for (Run& rn : runs_) rn.offset -= rn.len;  // restore

  // Pass 3 — apply each run with ONE state-index probe, and the
  // bookkeeping feed() repeats per record hoisted to per run: packet
  // count and last_us are run aggregates, and when the whole run lands
  // in the cached week (last_ts is the run's max, so it bounds every
  // record) the weekly histogram takes a single += len. The port
  // counter is run-length encoded — a scan hammers one service port,
  // so consecutive entries nearly always share it. The guards in
  // feed_batch() guarantee no finalize/restart/expiry can occur here
  // (the gap checks feed() performs are provably false), so only the
  // insert-or-update half of feed() is replicated.
  last_ts_ = batch[n - 1].ts_us;
  packets_seen_ += n;
  // Same two-stage software pipeline as feed_serial(), one run ahead
  // instead of one record: with a large state the per-run probe is a
  // DRAM miss, and a random-source batch degenerates to one run per
  // record — prefetching the state slot (far) and the run's first
  // destination/port slots (near) hides most of that latency. Hints
  // are read-only, so output is identical.
  const bool pipelined = states_.size() >= kPrefetchMinSources;
  constexpr std::size_t kRunLookahead = 8;
  const std::size_t n_runs = runs_.size();
  for (std::size_t ri = 0; ri < n_runs; ++ri) {
    if (pipelined) {
      if (ri + 2 * kRunLookahead < n_runs)
        states_.prefetch_hash(runs_[ri + 2 * kRunLookahead].key_hash);
      if (ri + kRunLookahead < n_runs) {
        const Run& nr = runs_[ri + kRunLookahead];
        if (SourceState* const* p = states_.find_hashed(nr.key, nr.key_hash)) {
          const BatchEntry& fe = batch_entries_[nr.offset];
          (*p)->dsts.prefetch_hash(fe.dst_hash);
          (*p)->ports.prefetch(fe.port);
        }
      }
    }
    const Run& run = runs_[ri];
    SourceState*& slot = states_.insert_hashed(run.key, run.key_hash);
    if (slot == nullptr) {
      // Cold source inside a grouped batch: guard 2 (via the cold-aware
      // refine_expiries) proved its event cannot finalize or split
      // before the batch ends, so rehydrating and appending the run is
      // exactly what the serial path would do.
      if (SourceState* thawed = promote(run.key, run.key_hash)) {
        slot = thawed;
      } else {
        slot = new_state();
        slot->first_us = run.first_ts;
        slot->asn = run.asn;
        expiries_.push(Expiry{run.first_ts + config_.timeout_us, run.key, run.key_hash});
        if (config_.demote_idle_us > 0)
          demotions_.push(Expiry{run.first_ts + config_.demote_idle_us, run.key, run.key_hash});
      }
    }
    SourceState& st = *slot;
    st.last_us = run.last_ts;
    st.packets += run.len;
    const BatchEntry* e = batch_entries_.data() + run.offset;
    const BatchEntry* const end = e + run.len;
    if (st.week_slot != nullptr && run.last_ts < st.week_next_us) {
      *st.week_slot += run.len;
    } else {
      for (const BatchEntry* w = e; w != end; ++w) {
        if (w->ts >= st.week_next_us || st.week_slot == nullptr) {
          const std::int64_t week = util::window_week(sim::seconds_of(w->ts));
          st.week_slot = &st.weekly[static_cast<std::uint32_t>(week)];
          st.week_next_us =
              week >= 0 && w->ts >= 0
                  ? sim::us_from_seconds(util::kWindowStart + (week + 1) * util::kSecondsPerWeek)
                  : INT64_MIN;
        }
        ++*st.week_slot;
      }
    }
    std::uint32_t run_port = e->port;
    std::uint64_t port_n = 0;
    for (; e != end; ++e) {
      if (st.dsts.insert_hashed(e->dst, e->dst_hash) && e->dns) ++st.dsts_in_dns;
      if (e->port != run_port) {
        st.ports[run_port] += port_n;
        run_port = e->port;
        port_n = 0;
      }
      ++port_n;
    }
    st.ports[run_port] += port_n;
  }
  return true;
}

void ScanDetector::finalize(const net::Ipv6Prefix& key, SourceState& st) {
  if (st.dsts.size() < config_.min_destinations) return;
  ScanEvent ev;
  ev.source = key;
  ev.first_us = st.first_us;
  ev.last_us = st.last_us;
  ev.packets = st.packets;
  ev.distinct_dsts = static_cast<std::uint32_t>(st.dsts.size());
  ev.distinct_dsts_in_dns = st.dsts_in_dns;
  ev.src_asn = st.asn;
  ev.port_packets.reserve(st.ports.size());
  st.ports.for_each([&](std::uint32_t port, std::uint64_t n) {
    ev.port_packets.emplace_back(static_cast<std::uint16_t>(port), n);
  });
  std::sort(ev.port_packets.begin(), ev.port_packets.end());
  ev.weekly_packets.reserve(st.weekly.size());
  st.weekly.for_each([&](std::uint32_t week, std::uint64_t n) {
    ev.weekly_packets.emplace_back(static_cast<std::int32_t>(week), n);
  });
  std::sort(ev.weekly_packets.begin(), ev.weekly_packets.end());
  dm().events_emitted.add();
  sink_->on_event(std::move(ev));
}

void ScanDetector::advance(sim::TimeUs now) {
  if (now < last_ts_) return;
  last_ts_ = now;
  expire_up_to(now);
  if (config_.demote_idle_us > 0) demote_up_to(now);
}

void ScanDetector::finalize_cold(const net::Ipv6Prefix& key, const ColdState& cs) {
  if (cs.dsts.size() < config_.min_destinations) return;
  ScanEvent ev;
  ev.source = key;
  ev.first_us = cs.first_us;
  ev.last_us = cs.last_us;
  ev.packets = cs.packets;
  ev.distinct_dsts = static_cast<std::uint32_t>(cs.dsts.size());
  ev.distinct_dsts_in_dns = cs.dsts_in_dns;
  ev.src_asn = cs.asn;
  ev.port_packets.reserve(cs.ports.size());
  for (const auto& [port, n] : cs.ports)
    ev.port_packets.emplace_back(static_cast<std::uint16_t>(port), n);
  std::sort(ev.port_packets.begin(), ev.port_packets.end());
  ev.weekly_packets.reserve(cs.weekly.size());
  for (const auto& [week, n] : cs.weekly)
    ev.weekly_packets.emplace_back(static_cast<std::int32_t>(week), n);
  std::sort(ev.weekly_packets.begin(), ev.weekly_packets.end());
  dm().events_emitted.add();
  sink_->on_event(std::move(ev));
}

void ScanDetector::demote_up_to(sim::TimeUs now) {
  std::uint64_t demoted = 0;
  while (!demotions_.empty() && demotions_.top().at < now) {
    const Expiry e = demotions_.top();
    demotions_.pop();
    SourceState* const* p = states_.find_hashed(e.key, e.key_hash);
    if (p == nullptr) continue;  // already cold, or finalized
    const sim::TimeUs due = (*p)->last_us + config_.demote_idle_us;
    if (due != e.at) {
      // Stale reminder: the source was active since. Re-queue at its
      // current true demote time, same discipline as the expiry heap.
      demotions_.push(Expiry{due, e.key, e.key_hash});
      continue;
    }
    demote(e.key, e.key_hash, *p);
    ++demoted;
  }
  if (demoted && util::metrics::enabled()) {
    dm().demotions.add(demoted);
    dm().cold_sources.note(cold_.size());
  }
}

void ScanDetector::demote(const net::Ipv6Prefix& key, std::size_t key_hash, SourceState* st) {
  auto cs = std::make_unique<ColdState>();
  cs->first_us = st->first_us;
  cs->last_us = st->last_us;
  cs->packets = st->packets;
  cs->dsts_in_dns = st->dsts_in_dns;
  cs->asn = st->asn;
  cs->dsts.reserve(st->dsts.size());
  st->dsts.for_each([&](const net::Ipv6Address& a) { cs->dsts.push_back(a); });
  cs->ports.reserve(st->ports.size());
  st->ports.for_each(
      [&](std::uint32_t port, std::uint64_t n) { cs->ports.emplace_back(port, n); });
  cs->weekly.reserve(st->weekly.size());
  st->weekly.for_each(
      [&](std::uint32_t week, std::uint64_t n) { cs->weekly.emplace_back(week, n); });
  delete_state(st);
  states_.erase_hashed(key, key_hash);
  cold_.insert_hashed(key, key_hash) = cs.release();
}

ScanDetector::SourceState* ScanDetector::promote(const net::Ipv6Prefix& key,
                                                 std::size_t key_hash) {
  ColdState** p = cold_.find_hashed(key, key_hash);
  if (p == nullptr) return nullptr;
  std::unique_ptr<ColdState> cs(*p);
  cold_.erase_hashed(key, key_hash);
  SourceState* st = new_state();
  st->first_us = cs->first_us;
  st->last_us = cs->last_us;
  st->packets = cs->packets;
  st->dsts_in_dns = cs->dsts_in_dns;
  st->asn = cs->asn;
  st->dsts.reserve(cs->dsts.size());
  for (const auto& a : cs->dsts) st->dsts.insert(a);
  st->ports.reserve(cs->ports.size());
  for (const auto& [port, n] : cs->ports) st->ports[port] = n;
  st->weekly.reserve(cs->weekly.size());
  for (const auto& [week, n] : cs->weekly) st->weekly[week] = n;
  // week_slot stays null — the next record recomputes the cached
  // weekly-histogram slot lazily, against the rebuilt `weekly` map.
  demotions_.push(Expiry{cs->last_us + config_.demote_idle_us, key, key_hash});
  if (util::metrics::enabled()) dm().promotions.add();
  return st;
}

bool ScanDetector::refine_expiries(sim::TimeUs last) {
  // Batch-path companion of expire_up_to(): pops every reminder due
  // before the batch end and either discards it (dead source),
  // re-queues it at the source's current true due time (stale — the
  // refinement expire_up_to() itself performs, which provably never
  // emits), or reports failure when the true due time falls inside
  // the batch, i.e. the source could genuinely finalize — or gap out
  // across a batch-internal quiet stretch — before the batch ends.
  // Only in that last case must the serial path take over. Re-queued
  // entries land at >= `last`, so the loop pops each entry at most
  // once. Heap-content note: the serial path would refine the same
  // reminders a little later (possibly to an even later due time, if
  // the source sends again mid-batch); both refinements are interim
  // lower-bound alarms that get re-refined on the next pop, and
  // finalization fires at the variant-independent (true due, key)
  // point either way, so the output is unchanged.
  std::uint64_t pops = 0, stale = 0, dead = 0;
  bool ok = true;
  while (!expiries_.empty() && expiries_.top().at < last) {
    const Expiry e = expiries_.top();
    SourceState* const* p = states_.find_hashed(e.key, e.key_hash);
    sim::TimeUs due;
    if (p != nullptr) {
      due = (*p)->last_us + config_.timeout_us;
    } else if (ColdState* const* cp = cold_.find_hashed(e.key, e.key_hash)) {
      // Cold sources keep their expiry reminders; the record is
      // immutable, so its true due time is exact — refine or fail by
      // the same rule as a hot source.
      due = (*cp)->last_us + config_.timeout_us;
    } else {
      expiries_.pop();
      ++pops, ++dead;
      continue;
    }
    if (due < last) {
      ok = false;  // genuine finalization (or split) possible in-batch
      break;
    }
    expiries_.pop();
    expiries_.push(Expiry{due, e.key, e.key_hash});
    ++pops, ++stale;
  }
  if (pops && util::metrics::enabled()) {
    dm().expiry_pops.add(pops);
    dm().expiry_stale.add(stale);
    dm().expiry_dead.add(dead);
  }
  return ok;
}

void ScanDetector::expire_up_to(sim::TimeUs now) {
  // Local tallies, flushed once after the sweep: expire_up_to() runs
  // per record and usually pops nothing — the common case must stay a
  // heap-top compare, not four metric calls.
  std::uint64_t pops = 0, stale = 0, dead = 0, finalized = 0;
  // Strictly-less throughout: an entry due exactly now must neither be
  // finalized (its gap equals the timeout, which feed() keeps) nor
  // re-pushed-and-repopped at the same `at` (livelock).
  while (!expiries_.empty() && expiries_.top().at < now) {
    const Expiry e = expiries_.top();
    expiries_.pop();
    ++pops;
    SourceState* const* p = states_.find_hashed(e.key, e.key_hash);
    if (p == nullptr) {
      // Not hot: a cold-tier source finalizes straight from its packed
      // record, with the identical stale-requeue discipline (the
      // record is immutable, so `due` is exact).
      if (ColdState** cp = cold_.find_hashed(e.key, e.key_hash)) {
        ColdState* cs = *cp;
        const sim::TimeUs due = cs->last_us + config_.timeout_us;
        if (due != e.at) {
          expiries_.push(Expiry{due, e.key, e.key_hash});
          ++stale;
        } else {
          finalize_cold(e.key, *cs);
          ++finalized;
          delete cs;
          cold_.erase_hashed(e.key, e.key_hash);
        }
      } else {
        ++dead;
      }
      continue;
    }
    SourceState* st = *p;
    const sim::TimeUs due = st->last_us + config_.timeout_us;
    if (due != e.at) {
      // Stale: the source was active after this entry was pushed, so
      // `at` is not the event's end time. Finalizing here would emit
      // in heap-pop order of the stale `at`, not (due, key) order —
      // re-queue at the true due time instead; if that is still < now
      // the entry pops again later in this very sweep, in order.
      expiries_.push(Expiry{due, e.key, e.key_hash});
      ++stale;
      continue;
    }
    // Fresh entry with at == due < now: the gap strictly exceeds the
    // timeout (a gap of exactly the timeout still belongs to the same
    // event; feed() uses the matching strict > to split).
    finalize(e.key, *st);
    ++finalized;
    delete_state(st);
    states_.erase_hashed(e.key, e.key_hash);
  }
  if (pops && util::metrics::enabled()) {
    dm().expiry_pops.add(pops);
    dm().expiry_stale.add(stale);
    dm().expiry_dead.add(dead);
    dm().expiry_finalized.add(finalized);
  }
}

void ScanDetector::flush() {
  // Finalize in key order so flushed-event order is deterministic
  // regardless of hash-table iteration order. Hot and cold sources
  // interleave in one key-sorted pass — the tier a source happens to
  // sit in at flush time never shows in the output.
  struct Live {
    net::Ipv6Prefix key;
    SourceState* hot;
    ColdState* cold;
  };
  std::vector<Live> live;
  live.reserve(states_.size() + cold_.size());
  states_.for_each(
      [&](const net::Ipv6Prefix& key, SourceState* st) { live.push_back({key, st, nullptr}); });
  cold_.for_each(
      [&](const net::Ipv6Prefix& key, ColdState* cs) { live.push_back({key, nullptr, cs}); });
  std::sort(live.begin(), live.end(), [](const Live& a, const Live& b) { return a.key < b.key; });
  for (auto& l : live) {
    if (l.hot != nullptr) {
      finalize(l.key, *l.hot);
      delete_state(l.hot);
    } else {
      finalize_cold(l.key, *l.cold);
      delete l.cold;
    }
  }
  states_.clear();
  cold_.clear();
  while (!expiries_.empty()) expiries_.pop();
  while (!demotions_.empty()) demotions_.pop();
}

void ScanDetector::save(util::StateWriter& w) const {
  // Configuration fingerprint first — load() rejects an instance whose
  // knobs differ, since per-source state is only meaningful under the
  // aggregation/timeout that produced it.
  w.i32(config_.source_prefix_len);
  w.u32(config_.min_destinations);
  w.i64(config_.timeout_us);
  w.i64(config_.demote_idle_us);
  w.i64(last_ts_);
  w.u64(packets_seen_);
  const auto put_key = [&w](const net::Ipv6Prefix& key) {
    w.u64(key.address().hi());
    w.u64(key.address().lo());
    w.i32(key.length());
  };
  w.u64(states_.size());
  states_.for_each([&](const net::Ipv6Prefix& key, SourceState* st) {
    put_key(key);
    w.i64(st->first_us);
    w.i64(st->last_us);
    w.u64(st->packets);
    w.u32(st->dsts_in_dns);
    w.u32(st->asn);
    w.u64(st->dsts.size());
    st->dsts.for_each([&](const net::Ipv6Address& a) {
      w.u64(a.hi());
      w.u64(a.lo());
    });
    w.u64(st->ports.size());
    st->ports.for_each([&](std::uint32_t port, std::uint64_t n) {
      w.u32(port);
      w.u64(n);
    });
    w.u64(st->weekly.size());
    st->weekly.for_each([&](std::uint32_t week, std::uint64_t n) {
      w.u32(week);
      w.u64(n);
    });
  });
  w.u64(cold_.size());
  cold_.for_each([&](const net::Ipv6Prefix& key, ColdState* cs) {
    put_key(key);
    w.i64(cs->first_us);
    w.i64(cs->last_us);
    w.u64(cs->packets);
    w.u32(cs->dsts_in_dns);
    w.u32(cs->asn);
    w.u64(cs->dsts.size());
    for (const auto& a : cs->dsts) {
      w.u64(a.hi());
      w.u64(a.lo());
    }
    w.u64(cs->ports.size());
    for (const auto& [port, n] : cs->ports) {
      w.u32(port);
      w.u64(n);
    }
    w.u64(cs->weekly.size());
    for (const auto& [week, n] : cs->weekly) {
      w.u32(week);
      w.u64(n);
    }
  });
}

void ScanDetector::load(util::StateReader& r) {
  if (packets_seen_ != 0 || !states_.empty() || !cold_.empty())
    throw std::runtime_error("ScanDetector::load: detector already fed");
  if (r.i32() != config_.source_prefix_len || r.u32() != config_.min_destinations ||
      r.i64() != config_.timeout_us || r.i64() != config_.demote_idle_us)
    throw std::runtime_error("ScanDetector::load: configuration mismatch");
  last_ts_ = r.i64();
  packets_seen_ = r.u64();
  const auto get_key = [&r] {
    const std::uint64_t hi = r.u64();
    const std::uint64_t lo = r.u64();
    const int len = r.i32();
    if (len < 0 || len > 128)
      throw std::runtime_error("ScanDetector::load: bad prefix length");
    return net::Ipv6Prefix(net::Ipv6Address{hi, lo}, len);
  };
  // The reminder heaps are rebuilt, not restored: one entry per live
  // source at its exact current due time. The original heap may have
  // held earlier (stale) reminders, but those are interim alarms that
  // only ever get re-queued — finalization and demotion fire at the
  // (true due, key) point either way, so emitted output is unchanged.
  const std::uint64_t hot_n = r.count(64);
  states_.reserve(static_cast<std::size_t>(hot_n));
  for (std::uint64_t i = 0; i < hot_n; ++i) {
    const net::Ipv6Prefix key = get_key();
    const std::size_t key_hash = std::hash<net::Ipv6Prefix>{}(key);
    SourceState*& slot = states_.insert_hashed(key, key_hash);
    if (slot != nullptr) throw std::runtime_error("ScanDetector::load: duplicate source");
    SourceState* st = new_state();
    slot = st;
    st->first_us = r.i64();
    st->last_us = r.i64();
    st->packets = r.u64();
    st->dsts_in_dns = r.u32();
    st->asn = r.u32();
    const std::uint64_t n_dsts = r.count(16);
    st->dsts.reserve(static_cast<std::size_t>(n_dsts));
    for (std::uint64_t d = 0; d < n_dsts; ++d) {
      const std::uint64_t hi = r.u64();
      st->dsts.insert(net::Ipv6Address{hi, r.u64()});
    }
    const std::uint64_t n_ports = r.count(12);
    st->ports.reserve(static_cast<std::size_t>(n_ports));
    for (std::uint64_t d = 0; d < n_ports; ++d) {
      const std::uint32_t port = r.u32();
      st->ports[port] = r.u64();
    }
    const std::uint64_t n_weeks = r.count(12);
    st->weekly.reserve(static_cast<std::size_t>(n_weeks));
    for (std::uint64_t d = 0; d < n_weeks; ++d) {
      const std::uint32_t week = r.u32();
      st->weekly[week] = r.u64();
    }
    expiries_.push(Expiry{st->last_us + config_.timeout_us, key, key_hash});
    if (config_.demote_idle_us > 0)
      demotions_.push(Expiry{st->last_us + config_.demote_idle_us, key, key_hash});
  }
  const std::uint64_t cold_n = r.count(64);
  cold_.reserve(static_cast<std::size_t>(cold_n));
  for (std::uint64_t i = 0; i < cold_n; ++i) {
    const net::Ipv6Prefix key = get_key();
    const std::size_t key_hash = std::hash<net::Ipv6Prefix>{}(key);
    if (states_.find_hashed(key, key_hash) != nullptr ||
        cold_.find_hashed(key, key_hash) != nullptr)
      throw std::runtime_error("ScanDetector::load: duplicate source");
    auto cs = std::make_unique<ColdState>();
    cs->first_us = r.i64();
    cs->last_us = r.i64();
    cs->packets = r.u64();
    cs->dsts_in_dns = r.u32();
    cs->asn = r.u32();
    const std::uint64_t n_dsts = r.count(16);
    cs->dsts.reserve(static_cast<std::size_t>(n_dsts));
    for (std::uint64_t d = 0; d < n_dsts; ++d) {
      const std::uint64_t hi = r.u64();
      cs->dsts.emplace_back(net::Ipv6Address{hi, r.u64()});
    }
    const std::uint64_t n_ports = r.count(12);
    cs->ports.reserve(static_cast<std::size_t>(n_ports));
    for (std::uint64_t d = 0; d < n_ports; ++d) {
      const std::uint32_t port = r.u32();
      cs->ports.emplace_back(port, r.u64());
    }
    const std::uint64_t n_weeks = r.count(12);
    cs->weekly.reserve(static_cast<std::size_t>(n_weeks));
    for (std::uint64_t d = 0; d < n_weeks; ++d) {
      const std::uint32_t week = r.u32();
      cs->weekly.emplace_back(week, r.u64());
    }
    expiries_.push(Expiry{cs->last_us + config_.timeout_us, key, key_hash});
    cold_.insert_hashed(key, key_hash) = cs.release();
  }
  // No expect_end(): this payload may be embedded mid-section (the IDS
  // serializes one detector per ladder level); the outermost section
  // consumer asserts end-of-section.
}

void detect_multi(sim::RecordStream& stream, const std::vector<DetectorConfig>& configs,
                  const std::vector<EventSink*>& sinks) {
  if (sinks.size() != configs.size())
    throw std::invalid_argument("detect_multi: one sink per config required");
  for (EventSink* s : sinks)
    if (s == nullptr) throw std::invalid_argument("detect_multi: null sink");
  std::vector<std::unique_ptr<ScanDetector>> detectors;
  detectors.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i)
    detectors.push_back(std::make_unique<ScanDetector>(configs[i], *sinks[i]));
  // ONE pass over the stream regardless of level count: each batch is
  // fanned to every detector before the next batch is fetched.
  std::array<sim::LogRecord, 1024> batch;
  for (std::size_t n; (n = stream.next_batch(batch.data(), batch.size())) > 0;) {
    const std::span<const sim::LogRecord> span{batch.data(), n};
    for (auto& d : detectors) d->feed_batch(span);
  }
  for (std::size_t i = 0; i < configs.size(); ++i) {
    detectors[i]->flush();
    sinks[i]->flush();
  }
}

std::vector<std::vector<ScanEvent>> detect_multi(sim::RecordStream& stream,
                                                 const std::vector<DetectorConfig>& configs) {
  std::vector<std::vector<ScanEvent>> results(configs.size());
  std::vector<VectorSink> vec_sinks;
  vec_sinks.reserve(configs.size());
  for (auto& r : results) vec_sinks.emplace_back(r);
  std::vector<EventSink*> sinks;
  sinks.reserve(configs.size());
  for (auto& s : vec_sinks) sinks.push_back(&s);
  detect_multi(stream, configs, sinks);
  return results;
}

}  // namespace v6sonar::core
