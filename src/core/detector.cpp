#include "core/detector.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "util/timebase.hpp"

namespace v6sonar::core {

ScanDetector::ScanDetector(const DetectorConfig& config, EventSink sink)
    : config_(config), sink_(std::move(sink)) {
  if (config_.source_prefix_len < 0 || config_.source_prefix_len > 128)
    throw std::invalid_argument("ScanDetector: bad aggregation length");
  if (config_.min_destinations == 0)
    throw std::invalid_argument("ScanDetector: min_destinations must be positive");
  if (config_.timeout_us <= 0) throw std::invalid_argument("ScanDetector: bad timeout");
  if (!sink_) throw std::invalid_argument("ScanDetector: null sink");
}

void ScanDetector::feed(const sim::LogRecord& r) {
  if (r.ts_us < last_ts_)
    throw std::invalid_argument("ScanDetector: records must be time-ordered");
  last_ts_ = r.ts_us;
  ++packets_seen_;

  expire_up_to(r.ts_us);

  const net::Ipv6Prefix key{r.src, config_.source_prefix_len};
  auto [it, inserted] = states_.try_emplace(key);
  SourceState& st = it->second;
  if (inserted) {
    st.first_us = r.ts_us;
    st.asn = r.src_asn;
    expiries_.push(Expiry{r.ts_us + config_.timeout_us, key});
  } else if (r.ts_us - st.last_us > config_.timeout_us) {
    // The previous event of this source ended; finalize it and start a
    // fresh one in place.
    finalize(key, st);
    st = SourceState{};
    st.first_us = r.ts_us;
    st.asn = r.src_asn;
    expiries_.push(Expiry{r.ts_us + config_.timeout_us, key});
  }
  st.last_us = r.ts_us;
  ++st.packets;
  if (st.dsts.insert(r.dst) && r.dst_in_dns) ++st.dsts_in_dns;
  ++st.ports[r.dst_port];
  ++st.weekly[static_cast<std::uint32_t>(util::window_week(sim::seconds_of(r.ts_us)))];
}

void ScanDetector::finalize(const net::Ipv6Prefix& key, SourceState& st) {
  if (st.dsts.size() < config_.min_destinations) return;
  ScanEvent ev;
  ev.source = key;
  ev.first_us = st.first_us;
  ev.last_us = st.last_us;
  ev.packets = st.packets;
  ev.distinct_dsts = static_cast<std::uint32_t>(st.dsts.size());
  ev.distinct_dsts_in_dns = st.dsts_in_dns;
  ev.src_asn = st.asn;
  ev.port_packets.reserve(st.ports.size());
  st.ports.for_each([&](std::uint32_t port, std::uint64_t n) {
    ev.port_packets.emplace_back(static_cast<std::uint16_t>(port), n);
  });
  std::sort(ev.port_packets.begin(), ev.port_packets.end());
  ev.weekly_packets.reserve(st.weekly.size());
  st.weekly.for_each([&](std::uint32_t week, std::uint64_t n) {
    ev.weekly_packets.emplace_back(static_cast<std::int32_t>(week), n);
  });
  std::sort(ev.weekly_packets.begin(), ev.weekly_packets.end());
  sink_(std::move(ev));
}

void ScanDetector::advance(sim::TimeUs now) {
  if (now < last_ts_) return;
  last_ts_ = now;
  expire_up_to(now);
}

void ScanDetector::expire_up_to(sim::TimeUs now) {
  // Strictly-less throughout: an entry due exactly now must neither be
  // finalized (its gap equals the timeout, which feed() keeps) nor
  // re-pushed-and-repopped at the same `at` (livelock).
  while (!expiries_.empty() && expiries_.top().at < now) {
    const Expiry e = expiries_.top();
    expiries_.pop();
    const auto it = states_.find(e.key);
    if (it == states_.end()) continue;
    const sim::TimeUs due = it->second.last_us + config_.timeout_us;
    if (due != e.at) {
      // Stale: the source was active after this entry was pushed, so
      // `at` is not the event's end time. Finalizing here would emit
      // in heap-pop order of the stale `at`, not (due, key) order —
      // re-queue at the true due time instead; if that is still < now
      // the entry pops again later in this very sweep, in order.
      expiries_.push(Expiry{due, e.key});
      continue;
    }
    // Fresh entry with at == due < now: the gap strictly exceeds the
    // timeout (a gap of exactly the timeout still belongs to the same
    // event; feed() uses the matching strict > to split).
    finalize(e.key, it->second);
    states_.erase(it);
  }
}

void ScanDetector::flush() {
  // Finalize in key order so flushed-event order is deterministic
  // regardless of hash-table iteration order.
  std::vector<const net::Ipv6Prefix*> keys;
  keys.reserve(states_.size());
  for (const auto& [key, st] : states_) keys.push_back(&key);
  std::sort(keys.begin(), keys.end(),
            [](const net::Ipv6Prefix* a, const net::Ipv6Prefix* b) { return *a < *b; });
  for (const auto* key : keys) finalize(*key, states_.at(*key));
  states_.clear();
  while (!expiries_.empty()) expiries_.pop();
}

std::vector<std::vector<ScanEvent>> detect_multi(sim::RecordStream& stream,
                                                 const std::vector<DetectorConfig>& configs) {
  std::vector<std::vector<ScanEvent>> results(configs.size());
  std::vector<std::unique_ptr<ScanDetector>> detectors;
  detectors.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    detectors.push_back(std::make_unique<ScanDetector>(
        configs[i], [&results, i](ScanEvent&& ev) { results[i].push_back(std::move(ev)); }));
  }
  while (auto r = stream.next()) {
    for (auto& d : detectors) d->feed(*r);
  }
  for (auto& d : detectors) d->flush();
  return results;
}

}  // namespace v6sonar::core
