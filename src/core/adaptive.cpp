#include "core/adaptive.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace v6sonar::core {

namespace {

struct LevelSource {
  std::uint64_t packets = 0;
  std::uint32_t asn = 0;
};

using LevelMap = std::map<net::Ipv6Prefix, LevelSource>;

LevelMap fold(const std::vector<ScanEvent>& events) {
  LevelMap m;
  for (const auto& ev : events) {
    auto& s = m[ev.source];
    s.packets += ev.packets;
    s.asn = ev.src_asn;
  }
  return m;
}

}  // namespace

std::vector<Attribution> attribute_adaptive(
    const std::vector<std::vector<ScanEvent>>& events_per_level,
    const AdaptiveConfig& config) {
  if (events_per_level.size() != config.ladder.size())
    throw std::invalid_argument("attribute_adaptive: one event list per ladder level required");
  for (std::size_t i = 1; i < config.ladder.size(); ++i)
    if (config.ladder[i] >= config.ladder[i - 1])
      throw std::invalid_argument("attribute_adaptive: ladder must go finest to coarsest");

  // Start with every finest-level source attributed to itself.
  std::vector<LevelMap> levels;
  levels.reserve(events_per_level.size());
  for (const auto& evs : events_per_level) levels.push_back(fold(evs));

  std::map<net::Ipv6Prefix, Attribution> current;
  for (const auto& [src, s] : levels.front()) {
    Attribution a;
    a.source = src;
    a.level = config.ladder.front();
    a.packets = s.packets;
    a.child_packets = s.packets;
    a.children = 1;
    a.src_asn = s.asn;
    current.emplace(src, a);
  }

  // Walk the ladder coarser level by coarser level.
  for (std::size_t li = 1; li < config.ladder.size(); ++li) {
    const int parent_len = config.ladder[li];
    std::map<net::Ipv6Prefix, Attribution> next;

    // Group current attributions by their parent prefix.
    std::map<net::Ipv6Prefix, std::vector<const Attribution*>> groups;
    for (const auto& [src, a] : current)
      groups[a.source.parent(parent_len)].push_back(&a);

    // Parents that qualified at this level but have no qualified
    // children at all (pure spread actors) appear only in levels[li].
    for (const auto& [parent, ps] : levels[li]) {
      auto git = groups.find(parent);
      const std::uint64_t child_sum =
          git == groups.end()
              ? 0
              : [&] {
                  std::uint64_t s = 0;
                  for (const auto* a : git->second) s += a->packets;
                  return s;
                }();
      const std::size_t child_count = git == groups.end() ? 0 : git->second.size();

      const bool absorb =
          child_count <= config.max_children_absorbed &&
          static_cast<double>(ps.packets) >=
              config.absorb_ratio * static_cast<double>(child_sum == 0 ? 1 : child_sum) &&
          (child_sum == 0 || ps.packets > child_sum);

      if (absorb) {
        Attribution a;
        a.source = parent;
        a.level = parent_len;
        a.packets = ps.packets;
        a.child_packets = child_sum;
        a.children = child_count;
        a.src_asn = ps.asn;
        next.emplace(parent, a);
        if (git != groups.end()) groups.erase(git);  // children replaced
      }
    }

    // Keep everything not absorbed.
    for (const auto& [parent, ps] : groups)
      for (const auto* a : ps) next.emplace(a->source, *a);

    current = std::move(next);
  }

  std::vector<Attribution> out;
  out.reserve(current.size());
  for (auto& [src, a] : current) out.push_back(a);
  return out;
}

}  // namespace v6sonar::core
