// Streaming large-scale IPv6 scan detector (§2.2).
//
// Packets are first aggregated by source prefix (the paper's central
// methodological knob: /128 = none, /64, /48, or any length including
// /32 for the AS #18 case study), then carved into events by a
// maximum packet inter-arrival timeout, and reported as scans when
// they reach the minimum destination-address count.
//
// The detector is single-pass and runs in memory bounded by the number
// of concurrently active sources; 15 months of telescope traffic
// stream through it without buffering.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/scan_event.hpp"
#include "net/prefix.hpp"
#include "sim/record.hpp"
#include "util/flat_hash.hpp"

namespace v6sonar::core {

struct DetectorConfig {
  /// Source aggregation length: 128 treats every address separately.
  int source_prefix_len = 64;
  /// Minimum distinct destination IPs for a scan (paper: 100;
  /// sensitivity analysis also uses 50; prior work used 25 and 5).
  std::uint32_t min_destinations = 100;
  /// Maximum packet inter-arrival gap within one scan (paper: 3600 s;
  /// sensitivity analysis: 1800 s, 900 s).
  sim::TimeUs timeout_us = 3'600LL * 1'000'000;
};

class ScanDetector {
 public:
  using EventSink = std::function<void(ScanEvent&&)>;

  /// Events that qualify are passed to `sink` as they are finalized
  /// (i.e. when their source goes quiet past the timeout, or at
  /// flush()). Sub-threshold activity is counted but never reported.
  ///
  /// Emission order is deterministic: timed-out events arrive sorted
  /// by (last_us, source) — expiry time is last_us + timeout, so due
  /// order is end-time order — and flush() then emits the remainder
  /// sorted by source. core::ParallelScanPipeline reproduces exactly
  /// this order from its per-shard detectors.
  ScanDetector(const DetectorConfig& config, EventSink sink);

  /// Feed one record. Records must arrive in non-decreasing time order
  /// (out-of-order input throws std::invalid_argument — feeding a
  /// detector unsorted logs is a programming error, not a data error).
  void feed(const sim::LogRecord& r);

  /// Advance the clock without a packet: finalizes events whose source
  /// has been quiet past the timeout as of `now`. No-op if `now` is
  /// not ahead of the last record. The sharded pipeline ticks idle
  /// shards with this so their events finalize without traffic.
  void advance(sim::TimeUs now);

  /// Finalize all in-flight events. Call once after the last record.
  void flush();

  /// Counters over everything seen (pre-qualification).
  [[nodiscard]] std::uint64_t packets_seen() const noexcept { return packets_seen_; }
  /// Number of sources currently tracked (diagnostics / benchmarks).
  [[nodiscard]] std::size_t active_sources() const noexcept { return states_.size(); }
  [[nodiscard]] const DetectorConfig& config() const noexcept { return config_; }

 private:
  struct SourceState {
    sim::TimeUs first_us = 0;
    sim::TimeUs last_us = 0;
    std::uint64_t packets = 0;
    std::uint32_t dsts_in_dns = 0;
    std::uint32_t asn = 0;
    util::FlatSet<net::Ipv6Address> dsts;
    util::FlatMap<std::uint32_t, std::uint64_t, util::IntHash> ports;
    util::FlatMap<std::uint32_t, std::uint64_t, util::IntHash> weekly;
  };

  void finalize(const net::Ipv6Prefix& key, SourceState& st);
  void expire_up_to(sim::TimeUs now);

  DetectorConfig config_;
  EventSink sink_;
  std::unordered_map<net::Ipv6Prefix, SourceState> states_;

  // Lazy expiry heap: (earliest possible expiry, key). Stale entries
  // (source was active since the push) are re-pushed at their true due
  // time on pop — never finalized directly, so finalization happens in
  // exact (due, key) order. Ties on expiry time break by key, which
  // makes the emission order a total order — the contract the parallel
  // pipeline's k-way merge relies on.
  struct Expiry {
    sim::TimeUs at;
    net::Ipv6Prefix key;
    friend bool operator<(const Expiry& a, const Expiry& b) noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.key > b.key;
    }
  };
  std::priority_queue<Expiry> expiries_;

  sim::TimeUs last_ts_ = INT64_MIN;
  std::uint64_t packets_seen_ = 0;
};

/// Convenience: run a whole record stream through detectors at several
/// aggregation levels in one pass, collecting events per level.
[[nodiscard]] std::vector<std::vector<ScanEvent>> detect_multi(
    sim::RecordStream& stream, const std::vector<DetectorConfig>& configs);

}  // namespace v6sonar::core
