// Streaming large-scale IPv6 scan detector (§2.2).
//
// Packets are first aggregated by source prefix (the paper's central
// methodological knob: /128 = none, /64, /48, or any length including
// /32 for the AS #18 case study), then carved into events by a
// maximum packet inter-arrival timeout, and reported as scans when
// they reach the minimum destination-address count.
//
// The detector is single-pass and runs in memory bounded by the number
// of concurrently active sources; 15 months of telescope traffic
// stream through it without buffering.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <span>
#include <vector>

#include "core/event_sink.hpp"
#include "core/scan_event.hpp"
#include "core/state_codec.hpp"
#include "net/prefix.hpp"
#include "sim/record.hpp"
#include "util/arena.hpp"
#include "util/flat_hash.hpp"

namespace v6sonar::core {

struct DetectorConfig {
  /// Source aggregation length: 128 treats every address separately.
  int source_prefix_len = 64;
  /// Minimum distinct destination IPs for a scan (paper: 100;
  /// sensitivity analysis also uses 50; prior work used 25 and 5).
  std::uint32_t min_destinations = 100;
  /// Maximum packet inter-arrival gap within one scan (paper: 3600 s;
  /// sensitivity analysis: 1800 s, 900 s).
  sim::TimeUs timeout_us = 3'600LL * 1'000'000;
  /// Hot/cold state tiering: demote a source's arena-backed hot state
  /// into a compact immutable cold record once it has been idle this
  /// long (0 = tiering off). Must be positive and strictly less than
  /// timeout_us when set — past the timeout the event finalizes
  /// instead. Demotion and the transparent promotion on the source's
  /// next packet are output-invisible: emitted events, their order,
  /// and every counter are byte-identical to an untiered run.
  sim::TimeUs demote_idle_us = 0;
};

class ScanDetector : public StateCodec {
 public:
  /// Legacy callable sink; wrapped in a FunctionSink internally.
  using EventFn = std::function<void(ScanEvent&&)>;

  /// Events that qualify are emitted into `sink` as they are finalized
  /// (i.e. when their source goes quiet past the timeout, or at
  /// flush()). Sub-threshold activity is counted but never reported.
  /// `sink` is borrowed (it must outlive the detector) and is never
  /// flush()ed by the detector — the chain's assembler flushes it
  /// after the detector's own flush().
  ///
  /// Emission order is deterministic: timed-out events arrive sorted
  /// by (last_us, source) — expiry time is last_us + timeout, so due
  /// order is end-time order — and flush() then emits the remainder
  /// sorted by source. core::ParallelScanPipeline reproduces exactly
  /// this order from its per-shard detectors.
  ScanDetector(const DetectorConfig& config, EventSink& sink);
  /// Legacy adapter: wraps `fn` in an owned FunctionSink.
  ScanDetector(const DetectorConfig& config, EventFn fn);
  ~ScanDetector();

  /// Feed one record. Records must arrive in non-decreasing time order
  /// (out-of-order input throws std::invalid_argument — feeding a
  /// detector unsorted logs is a programming error, not a data error).
  void feed(const sim::LogRecord& r);

  /// Feed a whole batch (same ordering contract as feed()). Output is
  /// byte-identical to feeding each record in turn — verified by test
  /// across batch sizes — but substantially faster: when the batch
  /// provably contains no event boundary (see detector.cpp), updates
  /// commute across sources, so records are grouped by source and each
  /// source's run is applied with one state-index probe and cache-hot
  /// per-source tables. Batches that may finalize an event fall back
  /// to the strict record-at-a-time order.
  void feed_batch(std::span<const sim::LogRecord> batch);

  /// Advance the clock without a packet: finalizes events whose source
  /// has been quiet past the timeout as of `now`. No-op if `now` is
  /// not ahead of the last record. The sharded pipeline ticks idle
  /// shards with this so their events finalize without traffic.
  void advance(sim::TimeUs now);

  /// Finalize all in-flight events. Call once after the last record.
  void flush();

  /// Freeze/thaw (core::StateCodec): save() serializes configuration
  /// fingerprint plus every live source (hot and cold tier alike);
  /// load() reconstructs into a freshly constructed, identically
  /// configured detector. The expiry and demotion reminder heaps are
  /// NOT serialized — load() re-seeds one reminder per live source at
  /// its true due time, which is output-identical because finalization
  /// always fires at the (true due, key) point regardless of how many
  /// interim stale reminders preceded it.
  void save(util::StateWriter& w) const override;
  void load(util::StateReader& r) override;

  /// Counters over everything seen (pre-qualification).
  [[nodiscard]] std::uint64_t packets_seen() const noexcept { return packets_seen_; }
  /// Number of sources currently tracked across both tiers
  /// (diagnostics / benchmarks).
  [[nodiscard]] std::size_t active_sources() const noexcept {
    return states_.size() + cold_.size();
  }
  /// Tier split: arena-backed hot states vs compact cold records.
  [[nodiscard]] std::size_t hot_sources() const noexcept { return states_.size(); }
  [[nodiscard]] std::size_t cold_sources() const noexcept { return cold_.size(); }
  [[nodiscard]] const DetectorConfig& config() const noexcept { return config_; }
  /// The arena backing per-source container storage (diagnostics: its
  /// recycled/fresh counters quantify allocator traffic avoided).
  [[nodiscard]] const util::SlabPool& pool() const noexcept { return pool_; }

 private:
  /// Below this many tracked sources, the serial fallback loop skips
  /// its prefetch lookahead (the state fits in cache; hints would be
  /// overhead).
  static constexpr std::size_t kPrefetchMinSources = 1'024;

  /// Multiplicative hash for the destination set — the hottest hash in
  /// the pipeline (probed once per record). Scans sweep low-entropy
  /// structured ranges, which the golden-ratio multiplies spread
  /// evenly; std::hash's full-avalanche finalizer buys nothing here.
  /// The set is never iterated (only counted), so distribution quality
  /// has no observable effect beyond probe length.
  struct DstHash {
    std::size_t operator()(const net::Ipv6Address& a) const noexcept {
      return static_cast<std::size_t>(
          (a.hi() ^ (a.lo() * 0x9E3779B97F4A7C15ULL)) * 0x9E3779B97F4A7C15ULL);
    }
  };

  struct SourceState {
    /// All slot storage comes from the detector's pool: an expiring
    /// source hands its arrays straight to the next one appearing.
    explicit SourceState(util::SlabPool* pool) noexcept
        : dsts(pool), ports(pool), weekly(pool) {}

    /// Start a fresh event in place (timeout split): counters zeroed,
    /// container storage kept — the same source tends to reach a
    /// similar size again, so re-growing from 8 slots is waste.
    void restart(sim::TimeUs now, std::uint32_t src_asn) noexcept {
      first_us = now;
      last_us = 0;
      packets = 0;
      dsts_in_dns = 0;
      asn = src_asn;
      week_next_us = INT64_MIN;
      week_slot = nullptr;
      dsts.reset();
      ports.reset();
      weekly.reset();
    }

    sim::TimeUs first_us = 0;
    sim::TimeUs last_us = 0;
    std::uint64_t packets = 0;
    std::uint32_t dsts_in_dns = 0;
    std::uint32_t asn = 0;
    // Cached weekly-histogram slot: the week index changes once per
    // 604800 s while records arrive microseconds apart, so feed()
    // only recomputes (and re-probes `weekly`) when the timestamp
    // crosses `week_next_us`. Timestamps are monotonic, so a single
    // upper bound is exact. Only refresh() writes to `weekly`, so the
    // slot pointer can't be invalidated by growth between refreshes.
    sim::TimeUs week_next_us = INT64_MIN;
    std::uint64_t* week_slot = nullptr;
    util::FlatSet<net::Ipv6Address, DstHash> dsts;
    util::FlatMap<std::uint32_t, std::uint64_t, util::IntHash> ports;
    util::FlatMap<std::uint32_t, std::uint64_t, util::IntHash> weekly;
  };

  /// Cold-tier record: an idle source's state packed into exact-size
  /// heap arrays. Immutable while cold; the hot state's FlatSet/FlatMap
  /// blocks (power-of-two slab classes at <= 75% load) go back to the
  /// pool for the next hot source, so steady-state arena growth is
  /// bounded by the *concurrently hot* working set, not by every live
  /// source. The destination list keeps full contents (promotion must
  /// keep deduplicating future inserts); ports/weekly keep (key, count)
  /// pairs. Everything an emitted event needs is preserved exactly —
  /// finalize sorts the lists either way — so tiering never changes
  /// output.
  struct ColdState {
    sim::TimeUs first_us = 0;
    sim::TimeUs last_us = 0;
    std::uint64_t packets = 0;
    std::uint32_t dsts_in_dns = 0;
    std::uint32_t asn = 0;
    std::vector<net::Ipv6Address> dsts;
    std::vector<std::pair<std::uint32_t, std::uint64_t>> ports;
    std::vector<std::pair<std::uint32_t, std::uint64_t>> weekly;
  };

  void finalize(const net::Ipv6Prefix& key, SourceState& st);
  void finalize_cold(const net::Ipv6Prefix& key, const ColdState& cs);
  void expire_up_to(sim::TimeUs now);
  /// Pop demotion reminders due before `now`: stale ones (source active
  /// since) re-queue at the true demote time, fresh ones demote. Runs
  /// only with tiering enabled; demotion is output-invisible, so the
  /// sweep may run at any point between records.
  void demote_up_to(sim::TimeUs now);
  void demote(const net::Ipv6Prefix& key, std::size_t key_hash, SourceState* st);
  /// Rehydrate `key`'s cold record into a hot state (nullptr if the
  /// source is not cold). The caller owns wiring it into states_.
  [[nodiscard]] SourceState* promote(const net::Ipv6Prefix& key, std::size_t key_hash);
  [[nodiscard]] bool refine_expiries(sim::TimeUs last);
  [[nodiscard]] SourceState* new_state();
  void delete_state(SourceState* st) noexcept;
  /// feed() with the aggregation key and its hash already derived —
  /// the single definition of the per-record update; every feed path
  /// funnels through it so key/hash derivation happens exactly once
  /// per record.
  void feed_one(const sim::LogRecord& r, const net::Ipv6Prefix& key, std::size_t key_hash);
  /// Fill batch_keys_/batch_hashes_ for the whole batch: a tight
  /// mask-and-multiply loop over the source addresses (two ANDs, two
  /// or three multiplies, one finalizer per record) that the compiler
  /// can software-pipeline, feeding both the grouped and the serial
  /// path below.
  void derive_batch(std::span<const sim::LogRecord> batch);
  void feed_serial(std::span<const sim::LogRecord> batch);
  bool feed_grouped(std::span<const sim::LogRecord> batch);

  DetectorConfig config_;
  /// Precomputed masks + salt for config_.source_prefix_len; derives
  /// (key, hash) pairs bit-identical to std::hash<Ipv6Prefix>, so the
  /// *_hashed container entry points interoperate with plain ones.
  net::PrefixKeyDeriver deriver_;
  std::unique_ptr<FunctionSink> owned_sink_;  ///< legacy-adapter storage, if any
  EventSink* sink_;
  util::SlabPool pool_;  // declared before states_: destroyed after its users

  // Flat open-addressed index of pool-allocated states. Flat so the
  // batch path can prefetch the home slot from the key alone; the
  // states live in pool blocks (stable addresses across rehash).
  util::FlatMap<net::Ipv6Prefix, SourceState*> states_;

  // Lazy expiry heap: (earliest possible expiry, key). Stale entries
  // (source was active since the push) are re-pushed at their true due
  // time on pop — never finalized directly, so finalization happens in
  // exact (due, key) order. Ties on expiry time break by key, which
  // makes the emission order a total order — the contract the parallel
  // pipeline's k-way merge relies on.
  struct Expiry {
    sim::TimeUs at;
    net::Ipv6Prefix key;
    /// std::hash<Ipv6Prefix>(key), carried so the sweep's per-pop
    /// state-index probe (and the final erase) reuses the hash
    /// computed when the event started.
    std::size_t key_hash;
    friend bool operator<(const Expiry& a, const Expiry& b) noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.key > b.key;
    }
  };
  std::priority_queue<Expiry> expiries_;

  // Cold tier (demote_idle_us > 0 only): key -> packed record, plus a
  // second lazy reminder heap driving demotion, run with the same
  // stale-requeue discipline as expiries_. Cold sources keep their
  // entries in expiries_, so finalization order is untouched; the
  // expiry sweep finalizes them straight from the packed arrays.
  util::FlatMap<net::Ipv6Prefix, ColdState*> cold_;
  std::priority_queue<Expiry> demotions_;

  sim::TimeUs last_ts_ = INT64_MIN;
  std::uint64_t packets_seen_ = 0;

  // feed_batch() grouping scratch (capacity persists across batches;
  // see feed_grouped in detector.cpp). A run is one source's records
  // within the current batch; per-run aggregates let the apply loop
  // update packets / last_us / weekly once per run instead of once per
  // record.
  struct Run {
    net::Ipv6Prefix key;
    std::size_t key_hash;  ///< std::hash<Ipv6Prefix>(key), derived once in pass 1
    std::uint32_t len;
    std::uint32_t offset;  ///< start of this run's entries in batch_entries_
    sim::TimeUs first_ts;
    sim::TimeUs last_ts;
    std::uint32_t asn;  ///< src_asn of the run's first record
  };
  /// The per-record fields the apply loop still needs, scattered
  /// run-contiguously so each run reads sequentially. The destination
  /// hash rides along from the scatter pass so the apply loop's set
  /// insert (and the lookahead prefetch) never re-hashes.
  struct BatchEntry {
    net::Ipv6Address dst;
    std::size_t dst_hash;  ///< DstHash{}(dst)
    sim::TimeUs ts;
    std::uint16_t port;
    bool dns;
  };
  std::vector<Run> runs_;
  std::vector<std::uint32_t> batch_run_;  ///< record index -> run index
  std::vector<BatchEntry> batch_entries_;
  /// Per-record derived aggregation keys and their hashes (see
  /// derive_batch); hot scratch reused across batches.
  std::vector<net::Ipv6Prefix> batch_keys_;
  std::vector<std::size_t> batch_hashes_;
  /// Open-addressed key -> run index, epoch-stamped: a slot is live
  /// only if its upper half matches batch_epoch_, so batches start
  /// from an "empty" table without memsetting it.
  std::vector<std::uint64_t> run_slots_;
  std::uint32_t batch_epoch_ = 0;
};

/// Run a whole record stream through detectors at several aggregation
/// levels in ONE pass (the stream is visited exactly once regardless
/// of how many levels run), emitting each level's events into its own
/// sink chain. `sinks.size()` must equal `configs.size()`; every sink
/// is flushed after its detector, in level order.
void detect_multi(sim::RecordStream& stream, const std::vector<DetectorConfig>& configs,
                  const std::vector<EventSink*>& sinks);

/// Materializing adapter over the sink version: collects events per
/// level into vectors (legacy bench/test entry point).
[[nodiscard]] std::vector<std::vector<ScanEvent>> detect_multi(
    sim::RecordStream& stream, const std::vector<DetectorConfig>& configs);

}  // namespace v6sonar::core
