// Scan event: the detector's output unit.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/prefix.hpp"
#include "sim/record.hpp"

namespace v6sonar::core {

/// One detected scan: a source (at the detector's aggregation level)
/// that targeted >= N destination addresses with no intra-event packet
/// gap exceeding the timeout (§2.2's large-scale scan definition).
struct ScanEvent {
  net::Ipv6Prefix source;    ///< aggregated source prefix
  sim::TimeUs first_us = 0;  ///< first packet
  sim::TimeUs last_us = 0;   ///< last packet
  std::uint64_t packets = 0;
  std::uint32_t distinct_dsts = 0;
  std::uint32_t distinct_dsts_in_dns = 0;  ///< of which DNS-exposed
  std::uint32_t src_asn = 0;

  /// Per-port packet counts, sorted by port. For ICMPv6 records the
  /// "port" is type<<8|code.
  std::vector<std::pair<std::uint16_t, std::uint64_t>> port_packets;

  /// Packet counts per measurement-window week (week 0 = the week of
  /// Jan 1, 2021), sorted by week — events can span many weeks, and
  /// the weekly time-series figures need the split.
  std::vector<std::pair<std::int32_t, std::uint64_t>> weekly_packets;

  friend bool operator==(const ScanEvent&, const ScanEvent&) = default;

  [[nodiscard]] double duration_sec() const noexcept {
    return static_cast<double>(last_us - first_us) / 1e6;
  }

  [[nodiscard]] std::size_t distinct_ports() const noexcept { return port_packets.size(); }

  /// Fraction of packets on the most common port (footnote 9's f).
  [[nodiscard]] double top_port_fraction() const noexcept {
    if (packets == 0) return 0.0;
    std::uint64_t best = 0;
    for (const auto& [port, n] : port_packets) best = best > n ? best : n;
    return static_cast<double>(best) / static_cast<double>(packets);
  }
};

}  // namespace v6sonar::core
