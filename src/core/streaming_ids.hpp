// Streaming intrusion-detection front end (§5, "IDSes should determine
// the aggregation in real-time ... track simultaneously various
// aggregations").
//
// Runs scan detectors at every ladder level over one packet stream,
// and periodically re-attributes the accumulated scan activity with
// the adaptive algorithm. Whenever a scanning actor first appears, or
// its best attribution escalates to a coarser prefix (an AS #18-style
// spread actor coming into focus), an alert is emitted — the feed an
// operator would wire into a blocklist.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "core/adaptive.hpp"
#include "core/detector.hpp"

namespace v6sonar::core {

struct IdsConfig {
  AdaptiveConfig adaptive;
  /// Detection thresholds applied at every ladder level.
  std::uint32_t min_destinations = 100;
  sim::TimeUs timeout_us = 3'600LL * 1'000'000;
  /// How often the attribution pass re-runs over accumulated activity.
  sim::TimeUs reattribution_period_us = 24LL * 3'600 * 1'000'000;
};

/// One blocklist alert.
struct IdsAlert {
  Attribution attribution;
  /// True the first time the prefix is attributed; false when an
  /// existing entry escalated to a coarser level (the attribution's
  /// prefix then covers previously alerted finer entries).
  bool is_new = true;
  sim::TimeUs at_us = 0;
};

/// Strip a scan event down to the fields the attribution pass reads
/// (source/times/packets/dsts/asn) — events carry heavy per-port and
/// per-week vectors that the IDS never looks at.
[[nodiscard]] ScanEvent slim_scan_event(const ScanEvent& ev);

/// The alert-diff state machine shared by the serial and the sharded
/// IDS front ends: given a fresh attribution set, emit one IdsAlert
/// per prefix that is new or escalated since the previous pass, and
/// remember the current blocklist.
class AlertTracker {
 public:
  using AlertSink = std::function<void(const IdsAlert&)>;

  /// Diff `attributions` against everything alerted so far.
  void update(std::vector<Attribution> attributions, sim::TimeUs now, const AlertSink& sink);

  [[nodiscard]] const std::vector<Attribution>& blocklist() const noexcept {
    return blocklist_;
  }

  /// Freeze/thaw the diff state (blocklist + already-alerted map) so a
  /// resumed IDS does not re-emit alerts for known actors.
  void save(util::StateWriter& w) const;
  void load(util::StateReader& r);

 private:
  std::vector<Attribution> blocklist_;
  std::map<net::Ipv6Prefix, int> alerted_;  ///< prefix -> level already alerted
};

class StreamingIds : public StateCodec {
 public:
  using AlertSink = AlertTracker::AlertSink;

  StreamingIds(const IdsConfig& config, AlertSink sink);

  /// Feed one record (time-ordered).
  void feed(const sim::LogRecord& r);

  /// Feed a whole batch; exactly equivalent to feeding each record in
  /// turn — reattribution passes trigger at the same records. The
  /// batch is sliced at reattribution boundaries and each slice is fed
  /// through the detectors' batched path (grouped updates, hash-once
  /// key derivation), so the ladder no longer pays the record-at-a-time
  /// fan-out cost between passes.
  void feed_batch(std::span<const sim::LogRecord> batch);

  /// Finalize all in-flight events and run a last attribution pass.
  void flush();

  /// Current blocklist: attributed scanning prefixes at their chosen
  /// aggregation level.
  [[nodiscard]] const std::vector<Attribution>& blocklist() const noexcept {
    return tracker_.blocklist();
  }

  /// Freeze/thaw (core::StateCodec): per-level detector state, the
  /// accumulated slim events awaiting the next attribution pass, the
  /// alert tracker, and the pass clock.
  void save(util::StateWriter& w) const override;
  void load(util::StateReader& r) override;

 private:
  void reattribute(sim::TimeUs now);

  IdsConfig config_;
  AlertSink sink_;
  std::vector<std::unique_ptr<ScanDetector>> detectors_;
  std::vector<std::vector<ScanEvent>> events_;  ///< accumulated per ladder level
  AlertTracker tracker_;
  sim::TimeUs next_pass_us_ = 0;
};

}  // namespace v6sonar::core
