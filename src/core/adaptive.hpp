// Adaptive source-aggregation attribution (§5, "Scan detection and
// attribution").
//
// The paper's discussion argues IDSes must pick the aggregation level
// per actor: too specific misses spread-source scans (AS #18, only
// fully visible at /32), too coarse merges distinct tenants (AS #6's
// cloud VMs) and causes collateral blocklisting. This implements the
// proposed "track multiple aggregations simultaneously" idea as a
// post-pass over multi-level detector output: keep the finest level,
// and escalate to a parent prefix only when the parent saw
// substantially more scan traffic than all of its qualified children
// combined — evidence that the actor is deliberately spreading below
// the detection threshold.
#pragma once

#include <cstdint>
#include <vector>

#include "core/scan_event.hpp"
#include "net/prefix.hpp"

namespace v6sonar::core {

struct AdaptiveConfig {
  /// Aggregation ladder, finest first. Events must be supplied for
  /// each level, in this order.
  std::vector<int> ladder = {128, 64, 48, 32};
  /// Escalate to the parent when parent packets exceed the sum of its
  /// qualified children's packets by this factor.
  double absorb_ratio = 1.5;
  /// Never escalate past a parent covering more distinct qualified
  /// children than this (cloud-provider guard against collateral).
  std::size_t max_children_absorbed = 4'096;
};

/// One attributed scanning source at its chosen aggregation level.
struct Attribution {
  net::Ipv6Prefix source;
  int level = 128;               ///< chosen ladder level
  std::uint64_t packets = 0;     ///< packets at the chosen level
  std::uint64_t child_packets = 0;  ///< packets visible at the finer level
  std::size_t children = 0;      ///< qualified finer-level sources covered
  std::uint32_t src_asn = 0;

  friend bool operator==(const Attribution&, const Attribution&) = default;
};

/// `events_per_level[i]` are the scan events detected at
/// `config.ladder[i]`. Returns the chosen attribution set, sorted by
/// source prefix.
[[nodiscard]] std::vector<Attribution> attribute_adaptive(
    const std::vector<std::vector<ScanEvent>>& events_per_level,
    const AdaptiveConfig& config);

}  // namespace v6sonar::core
