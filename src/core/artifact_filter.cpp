#include "core/artifact_filter.hpp"

#include <stdexcept>

#include "util/metrics.hpp"

namespace v6sonar::core {

namespace {

/// Per-day filter telemetry (names in docs/OBSERVABILITY.md). Recorded
/// once per closed day — never on the per-record path.
struct FilterMetrics {
  util::metrics::Counter days_closed{"filter.days_closed"};
  util::metrics::Counter packets_in{"filter.packets_in"};
  util::metrics::Counter packets_dropped{"filter.packets_dropped"};
  util::metrics::Counter duplicate_packets{"filter.duplicate_packets"};
  util::metrics::Counter sources_seen{"filter.sources_seen"};
  util::metrics::Counter sources_dropped{"filter.sources_dropped"};
  /// Distribution of per-source daily duplicate fractions, in percent
  /// (log2 bins: 0, 1, 2-3, 4-7, ... — enough to see how close the
  /// population sits to the 30% drop line).
  util::metrics::Histogram source_dup_pct{"filter.source_duplicate_pct"};
};

FilterMetrics& fm() {
  static FilterMetrics m;
  return m;
}

}  // namespace

ArtifactFilter::ArtifactFilter(const ArtifactFilterConfig& config, RecordSink out,
                               StatsSink stats)
    : config_(config), deriver_(config.source_prefix_len), out_(std::move(out)),
      stats_(std::move(stats)) {
  if (!out_) throw std::invalid_argument("ArtifactFilter: null output sink");
  if (config_.max_duplicate_fraction < 0 || config_.max_duplicate_fraction > 1)
    throw std::invalid_argument("ArtifactFilter: bad duplicate fraction");
  if (config_.source_prefix_len < 0 || config_.source_prefix_len > 128)
    throw std::invalid_argument("ArtifactFilter: bad aggregation length");
}

ArtifactFilter::~ArtifactFilter() {
  // SourceDays are pool blocks holding live containers; destroy them
  // explicitly (clearing the index would only drop the pointers).
  destroy_days();
}

ArtifactFilter::SourceDay* ArtifactFilter::new_day() {
  void* p = pool_.acquire(sizeof(SourceDay));
  return new (p) SourceDay(&pool_);
}

void ArtifactFilter::delete_day(SourceDay* sd) noexcept {
  sd->~SourceDay();
  pool_.release(sd, sizeof(SourceDay));
}

void ArtifactFilter::destroy_days() noexcept {
  sources_.for_each([this](const net::Ipv6Prefix&, SourceDay* sd) { delete_day(sd); });
  sources_.reset();
}

void ArtifactFilter::feed(const sim::LogRecord& r) {
  const net::PrefixKeyDeriver::Derived d = deriver_(r.src);
  feed_one(r, d.key, d.hash,
           FlowKeyHash{}(FlowKey{r.dst, proto_port_key(r.proto, r.dst_port)}));
}

void ArtifactFilter::feed_one(const sim::LogRecord& r, const net::Ipv6Prefix& key,
                              std::size_t key_hash, std::size_t flow_hash) {
  if (r.ts_us < last_ts_)
    throw std::invalid_argument("ArtifactFilter: records must be time-ordered");
  last_ts_ = r.ts_us;

  const std::int64_t day = sim::seconds_of(r.ts_us) / 86'400;
  if (day != current_day_) {
    close_day();
    current_day_ = day;
  }

  buffer_.push_back(r);
  SourceDay*& slot = sources_.insert_hashed(key, key_hash);
  if (slot == nullptr) slot = new_day();
  SourceDay& sd = *slot;
  ++sd.packets;
  if (++sd.hits.insert_hashed(FlowKey{r.dst, proto_port_key(r.proto, r.dst_port)},
                              flow_hash) > config_.duplicate_threshold)
    ++sd.duplicates;
}

void ArtifactFilter::feed_batch(std::span<const sim::LogRecord> batch) {
  const std::size_t n = batch.size();
  batch_keys_.resize(n);
  batch_key_hashes_.resize(n);
  batch_flow_hashes_.resize(n);
  // Vectorizable pre-pass: mask + multiply per record, no table
  // probes. Both hashes are derived exactly once and reused by the
  // prefetch stages and the insert probes below.
  for (std::size_t i = 0; i < n; ++i) {
    const auto& r = batch[i];
    const net::PrefixKeyDeriver::Derived d = deriver_(r.src);
    batch_keys_[i] = d.key;
    batch_key_hashes_[i] = d.hash;
    batch_flow_hashes_[i] =
        FlowKeyHash{}(FlowKey{r.dst, proto_port_key(r.proto, r.dst_port)});
  }
  if (sources_.size() < kPrefetchMinSources) {
    for (std::size_t i = 0; i < n; ++i)
      feed_one(batch[i], batch_keys_[i], batch_key_hashes_[i], batch_flow_hashes_[i]);
    return;
  }
  // Same two-stage software pipeline as the detector's serial path:
  // far stage warms the source-index slot, near stage resolves it and
  // warms the day's hit-table slot. Hints are read-only, so output is
  // identical to feed(). A day boundary inside the batch only makes
  // later hints miss (the index was rebuilt), never changes output.
  constexpr std::size_t kLookahead = 12;
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 2 * kLookahead < n) sources_.prefetch_hash(batch_key_hashes_[i + 2 * kLookahead]);
    if (i + kLookahead < n) {
      if (SourceDay* const* p =
              sources_.find_hashed(batch_keys_[i + kLookahead], batch_key_hashes_[i + kLookahead]))
        (*p)->hits.prefetch_hash(batch_flow_hashes_[i + kLookahead]);
    }
    feed_one(batch[i], batch_keys_[i], batch_key_hashes_[i], batch_flow_hashes_[i]);
  }
}

void ArtifactFilter::advance(sim::TimeUs now) {
  if (now < last_ts_) return;
  last_ts_ = now;
  const std::int64_t day = sim::seconds_of(now) / 86'400;
  if (current_day_ != INT64_MIN && day != current_day_) {
    close_day();
    current_day_ = day;
  }
}

void ArtifactFilter::close_day() {
  if (buffer_.empty()) {
    destroy_days();
    return;
  }
  FilterDayStats stats;
  stats.day = current_day_;
  stats.packets_in = buffer_.size();
  stats.sources_seen = sources_.size();

  // Decide which sources to drop today. The verdict is stored on the
  // SourceDay itself (index iteration order is unspecified, but every
  // per-source quantity here is an order-independent sum/observation).
  const bool counting = util::metrics::enabled();
  std::uint64_t duplicate_packets = 0;
  sources_.for_each([&](const net::Ipv6Prefix&, SourceDay* sd) {
    const bool drop = static_cast<double>(sd->duplicates) >
                      config_.max_duplicate_fraction * static_cast<double>(sd->packets);
    sd->dropped = drop;
    stats.sources_dropped += drop;
    if (counting) {
      duplicate_packets += sd->duplicates;
      fm().source_dup_pct.observe(sd->packets ? 100 * sd->duplicates / sd->packets : 0);
    }
  });

  // Release (or account) the buffered records in arrival order; the
  // verdict lookup reuses the hash-once derivation.
  for (const auto& r : buffer_) {
    const net::PrefixKeyDeriver::Derived d = deriver_(r.src);
    SourceDay* const* p = sources_.find_hashed(d.key, d.hash);
    if ((*p)->dropped) {
      ++stats.packets_dropped;
      ++stats.dropped_by_port[proto_port_key(r.proto, r.dst_port)];
    } else {
      out_(r);
    }
  }
  buffer_.clear();
  destroy_days();
  if (counting) {
    fm().days_closed.add();
    fm().packets_in.add(stats.packets_in);
    fm().packets_dropped.add(stats.packets_dropped);
    fm().duplicate_packets.add(duplicate_packets);
    fm().sources_seen.add(stats.sources_seen);
    fm().sources_dropped.add(stats.sources_dropped);
  }
  if (stats_) stats_(stats);
}

void ArtifactFilter::flush() {
  close_day();
  current_day_ = INT64_MIN;
}

void ArtifactFilter::save(util::StateWriter& w) const {
  w.u32(config_.duplicate_threshold);
  w.f64(config_.max_duplicate_fraction);
  w.i32(config_.source_prefix_len);
  w.i64(last_ts_);
  w.i64(current_day_);
  w.u64(buffer_.size());
  for (const auto& r : buffer_) w.pod(r);
}

void ArtifactFilter::load(util::StateReader& r) {
  if (last_ts_ != INT64_MIN || !buffer_.empty())
    throw std::runtime_error("ArtifactFilter::load: filter already fed");
  if (r.u32() != config_.duplicate_threshold ||
      r.f64() != config_.max_duplicate_fraction || r.i32() != config_.source_prefix_len)
    throw std::runtime_error("ArtifactFilter::load: configuration mismatch");
  last_ts_ = r.i64();
  current_day_ = r.i64();
  const std::uint64_t n = r.count(sizeof(sim::LogRecord));
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto rec = r.pod<sim::LogRecord>();
    buffer_.push_back(rec);
    // Same per-record accounting as feed_one(), minus the ordering and
    // day-boundary checks (the buffer is one partial day by
    // construction).
    const net::PrefixKeyDeriver::Derived d = deriver_(rec.src);
    SourceDay*& slot = sources_.insert_hashed(d.key, d.hash);
    if (slot == nullptr) slot = new_day();
    SourceDay& sd = *slot;
    ++sd.packets;
    const FlowKey fk{rec.dst, proto_port_key(rec.proto, rec.dst_port)};
    if (++sd.hits.insert_hashed(fk, FlowKeyHash{}(fk)) > config_.duplicate_threshold)
      ++sd.duplicates;
  }
  // No expect_end(): the payload may be embedded mid-section; the
  // outermost section consumer asserts end-of-section.
}

}  // namespace v6sonar::core
