#include "core/artifact_filter.hpp"

#include <stdexcept>

#include "util/metrics.hpp"

namespace v6sonar::core {

namespace {

/// Per-day filter telemetry (names in docs/OBSERVABILITY.md). Recorded
/// once per closed day — never on the per-record path.
struct FilterMetrics {
  util::metrics::Counter days_closed{"filter.days_closed"};
  util::metrics::Counter packets_in{"filter.packets_in"};
  util::metrics::Counter packets_dropped{"filter.packets_dropped"};
  util::metrics::Counter duplicate_packets{"filter.duplicate_packets"};
  util::metrics::Counter sources_seen{"filter.sources_seen"};
  util::metrics::Counter sources_dropped{"filter.sources_dropped"};
  /// Distribution of per-source daily duplicate fractions, in percent
  /// (log2 bins: 0, 1, 2-3, 4-7, ... — enough to see how close the
  /// population sits to the 30% drop line).
  util::metrics::Histogram source_dup_pct{"filter.source_duplicate_pct"};
};

FilterMetrics& fm() {
  static FilterMetrics m;
  return m;
}

}  // namespace

ArtifactFilter::ArtifactFilter(const ArtifactFilterConfig& config, RecordSink out,
                               StatsSink stats)
    : config_(config), out_(std::move(out)), stats_(std::move(stats)) {
  if (!out_) throw std::invalid_argument("ArtifactFilter: null output sink");
  if (config_.max_duplicate_fraction < 0 || config_.max_duplicate_fraction > 1)
    throw std::invalid_argument("ArtifactFilter: bad duplicate fraction");
  if (config_.source_prefix_len < 0 || config_.source_prefix_len > 128)
    throw std::invalid_argument("ArtifactFilter: bad aggregation length");
}

void ArtifactFilter::feed(const sim::LogRecord& r) {
  if (r.ts_us < last_ts_)
    throw std::invalid_argument("ArtifactFilter: records must be time-ordered");
  last_ts_ = r.ts_us;

  const std::int64_t day = sim::seconds_of(r.ts_us) / 86'400;
  if (day != current_day_) {
    close_day();
    current_day_ = day;
  }

  buffer_.push_back(r);
  SourceDay& sd =
      sources_.try_emplace(net::Ipv6Prefix{r.src, config_.source_prefix_len}, &pool_)
          .first->second;
  ++sd.packets;
  if (++sd.hits[FlowKey{r.dst, proto_port_key(r.proto, r.dst_port)}] >
      config_.duplicate_threshold)
    ++sd.duplicates;
}

void ArtifactFilter::advance(sim::TimeUs now) {
  if (now < last_ts_) return;
  last_ts_ = now;
  const std::int64_t day = sim::seconds_of(now) / 86'400;
  if (current_day_ != INT64_MIN && day != current_day_) {
    close_day();
    current_day_ = day;
  }
}

void ArtifactFilter::close_day() {
  if (buffer_.empty()) {
    sources_.clear();
    return;
  }
  FilterDayStats stats;
  stats.day = current_day_;
  stats.packets_in = buffer_.size();
  stats.sources_seen = sources_.size();

  // Decide which sources to drop today.
  const bool counting = util::metrics::enabled();
  std::uint64_t duplicate_packets = 0;
  std::unordered_map<net::Ipv6Prefix, bool> dropped;
  dropped.reserve(sources_.size());
  for (const auto& [src, sd] : sources_) {
    const bool drop = static_cast<double>(sd.duplicates) >
                      config_.max_duplicate_fraction * static_cast<double>(sd.packets);
    dropped.emplace(src, drop);
    stats.sources_dropped += drop;
    if (counting) {
      duplicate_packets += sd.duplicates;
      fm().source_dup_pct.observe(sd.packets ? 100 * sd.duplicates / sd.packets : 0);
    }
  }

  for (const auto& r : buffer_) {
    if (dropped.at(net::Ipv6Prefix{r.src, config_.source_prefix_len})) {
      ++stats.packets_dropped;
      ++stats.dropped_by_port[proto_port_key(r.proto, r.dst_port)];
    } else {
      out_(r);
    }
  }
  buffer_.clear();
  sources_.clear();
  if (counting) {
    fm().days_closed.add();
    fm().packets_in.add(stats.packets_in);
    fm().packets_dropped.add(stats.packets_dropped);
    fm().duplicate_packets.add(duplicate_packets);
    fm().sources_seen.add(stats.sources_seen);
    fm().sources_dropped.add(stats.sources_dropped);
  }
  if (stats_) stats_(stats);
}

void ArtifactFilter::flush() {
  close_day();
  current_day_ = INT64_MIN;
}

}  // namespace v6sonar::core
