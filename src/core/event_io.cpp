#include "core/event_io.hpp"

#include <cstdio>
#include <stdexcept>

namespace v6sonar::core {

namespace {

constexpr std::uint64_t kMagic = 0x56'36'45'56'54'53'30'31ULL;  // "V6EVTS01"

struct File {
  std::FILE* f = nullptr;
  File(const std::string& path, const char* mode) : f(std::fopen(path.c_str(), mode)) {
    if (!f) throw std::runtime_error("event_io: cannot open " + path);
  }
  ~File() {
    if (f) std::fclose(f);
  }
};

void put(std::FILE* f, const void* p, std::size_t n) {
  if (std::fwrite(p, 1, n, f) != n) throw std::runtime_error("event_io: write failed");
}

void get(std::FILE* f, void* p, std::size_t n) {
  if (std::fread(p, 1, n, f) != n) throw std::runtime_error("event_io: truncated file");
}

template <typename T>
void put_v(std::FILE* f, T v) {
  put(f, &v, sizeof v);
}

template <typename T>
T get_v(std::FILE* f) {
  T v{};
  get(f, &v, sizeof v);
  return v;
}

}  // namespace

void write_events(const std::string& path, const std::vector<ScanEvent>& events) {
  File file(path, "wb");
  std::setvbuf(file.f, nullptr, _IOFBF, 1 << 20);
  put_v(file.f, kMagic);
  put_v<std::uint64_t>(file.f, events.size());
  for (const auto& ev : events) {
    put_v(file.f, ev.source.address().hi());
    put_v(file.f, ev.source.address().lo());
    put_v<std::int32_t>(file.f, ev.source.length());
    put_v(file.f, ev.first_us);
    put_v(file.f, ev.last_us);
    put_v(file.f, ev.packets);
    put_v(file.f, ev.distinct_dsts);
    put_v(file.f, ev.distinct_dsts_in_dns);
    put_v(file.f, ev.src_asn);
    put_v<std::uint32_t>(file.f, static_cast<std::uint32_t>(ev.port_packets.size()));
    for (const auto& [port, n] : ev.port_packets) {
      put_v(file.f, port);
      put_v(file.f, n);
    }
    put_v<std::uint32_t>(file.f, static_cast<std::uint32_t>(ev.weekly_packets.size()));
    for (const auto& [week, n] : ev.weekly_packets) {
      put_v(file.f, week);
      put_v(file.f, n);
    }
  }
}

std::vector<ScanEvent> read_events(const std::string& path) {
  File file(path, "rb");
  std::setvbuf(file.f, nullptr, _IOFBF, 1 << 20);
  if (get_v<std::uint64_t>(file.f) != kMagic)
    throw std::runtime_error("event_io: not an event file: " + path);
  const auto count = get_v<std::uint64_t>(file.f);
  std::vector<ScanEvent> events;
  events.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    ScanEvent ev;
    const auto hi = get_v<std::uint64_t>(file.f);
    const auto lo = get_v<std::uint64_t>(file.f);
    const auto len = get_v<std::int32_t>(file.f);
    ev.source = net::Ipv6Prefix{net::Ipv6Address{hi, lo}, len};
    ev.first_us = get_v<sim::TimeUs>(file.f);
    ev.last_us = get_v<sim::TimeUs>(file.f);
    ev.packets = get_v<std::uint64_t>(file.f);
    ev.distinct_dsts = get_v<std::uint32_t>(file.f);
    ev.distinct_dsts_in_dns = get_v<std::uint32_t>(file.f);
    ev.src_asn = get_v<std::uint32_t>(file.f);
    const auto nports = get_v<std::uint32_t>(file.f);
    ev.port_packets.reserve(nports);
    for (std::uint32_t p = 0; p < nports; ++p) {
      const auto port = get_v<std::uint16_t>(file.f);
      const auto n = get_v<std::uint64_t>(file.f);
      ev.port_packets.emplace_back(port, n);
    }
    const auto nweeks = get_v<std::uint32_t>(file.f);
    ev.weekly_packets.reserve(nweeks);
    for (std::uint32_t w = 0; w < nweeks; ++w) {
      const auto week = get_v<std::int32_t>(file.f);
      const auto n = get_v<std::uint64_t>(file.f);
      ev.weekly_packets.emplace_back(week, n);
    }
    events.push_back(std::move(ev));
  }
  return events;
}

}  // namespace v6sonar::core
