#include "core/event_io.hpp"

#include <cstdio>
#include <stdexcept>

#include "util/fdio.hpp"
#include "util/metrics.hpp"

namespace v6sonar::core {

namespace {

constexpr std::uint64_t kMagic = 0x56'36'45'56'54'53'30'31ULL;  // "V6EVTS01"
constexpr std::size_t kHeaderBytes = 16;  // magic + count
/// Fixed bytes per event record (source hi/lo/len, timestamps,
/// counters, and the two list-length prefixes).
constexpr std::uint64_t kFixedEventBytes = 8 + 8 + 4 + 8 + 8 + 8 + 4 + 4 + 4 + 4 + 4;
constexpr std::size_t kPortEntryBytes = 2 + 8;
constexpr std::size_t kWeekEntryBytes = 4 + 8;

struct File {
  std::FILE* f = nullptr;
  File(const std::string& path, const char* mode) : f(std::fopen(path.c_str(), mode)) {
    if (!f) throw std::runtime_error("event_io: cannot open " + path);
  }
  ~File() {
    if (f) std::fclose(f);
  }
};

void put(std::FILE* f, const void* p, std::size_t n) {
  if (std::fwrite(p, 1, n, f) != n) throw std::runtime_error("event_io: write failed");
}

template <typename T>
void put_v(std::FILE* f, T v) {
  put(f, &v, sizeof v);
}

}  // namespace

// ------------------------------------------------------------------ //

struct EventWriter::Impl {
  File file;
  std::string path;
  /// Append position in bytes, header included — tracked explicitly
  /// (never via ftell) so checkpoint_sync() can seek back after the
  /// header backpatch and offset() is cheap.
  std::uint64_t pos = 0;
  Impl(const std::string& p, const char* mode) : file(p, mode), path(p) {}
};

EventWriter::EventWriter(const std::string& path)
    : impl_(std::make_unique<Impl>(path, "wb")) {
  std::setvbuf(impl_->file.f, nullptr, _IOFBF, 1 << 20);
  put_v(impl_->file.f, kMagic);
  // Count placeholder; close() backpatches the real value, so an
  // interrupted run is detectable (count 0 with trailing bytes).
  put_v<std::uint64_t>(impl_->file.f, 0);
  impl_->pos = kHeaderBytes;
}

EventWriter::EventWriter(const std::string& path, std::uint64_t resume_count,
                         std::uint64_t resume_offset)
    : impl_(std::make_unique<Impl>(path, "r+b")), count_(resume_count) {
  if (resume_offset < kHeaderBytes)
    throw std::runtime_error("event_io: bad resume offset for " + path);
  std::FILE* f = impl_->file.f;
  std::setvbuf(f, nullptr, _IOFBF, 1 << 20);
  std::uint64_t magic = 0;
  if (std::fread(&magic, 1, sizeof magic, f) != sizeof magic || magic != kMagic)
    throw std::runtime_error("event_io: not an event file: " + path);
  // Drop anything written after the checkpoint — those events will be
  // re-emitted by the resumed run.
  if (util::truncate_file(f, resume_offset) != 0 ||
      std::fseek(f, static_cast<long>(resume_offset), SEEK_SET) != 0)
    throw std::runtime_error("event_io: cannot truncate " + path + " for resume");
  impl_->pos = resume_offset;
}

EventWriter::~EventWriter() {
  try {
    close();
  } catch (...) {  // destructor must not throw; call close() to see errors
  }
}

void EventWriter::on_event(ScanEvent&& ev) {
  if (!impl_) throw std::runtime_error("event_io: writer closed");
  std::FILE* f = impl_->file.f;
  put_v(f, ev.source.address().hi());
  put_v(f, ev.source.address().lo());
  put_v<std::int32_t>(f, ev.source.length());
  put_v(f, ev.first_us);
  put_v(f, ev.last_us);
  put_v(f, ev.packets);
  put_v(f, ev.distinct_dsts);
  put_v(f, ev.distinct_dsts_in_dns);
  put_v(f, ev.src_asn);
  put_v<std::uint32_t>(f, static_cast<std::uint32_t>(ev.port_packets.size()));
  for (const auto& [port, n] : ev.port_packets) {
    put_v(f, port);
    put_v(f, n);
  }
  put_v<std::uint32_t>(f, static_cast<std::uint32_t>(ev.weekly_packets.size()));
  for (const auto& [week, n] : ev.weekly_packets) {
    put_v(f, week);
    put_v(f, n);
  }
  ++count_;
  impl_->pos += kFixedEventBytes + ev.port_packets.size() * kPortEntryBytes +
                ev.weekly_packets.size() * kWeekEntryBytes;
}

std::uint64_t EventWriter::offset() const noexcept { return impl_ ? impl_->pos : 0; }

void EventWriter::checkpoint_sync() {
  if (!impl_) throw std::runtime_error("event_io: writer closed");
  std::FILE* f = impl_->file.f;
  if (std::fseek(f, 8, SEEK_SET) != 0 ||
      std::fwrite(&count_, 1, sizeof count_, f) != sizeof count_ ||
      !util::flush_to_disk(f) ||
      std::fseek(f, static_cast<long>(impl_->pos), SEEK_SET) != 0)
    throw std::runtime_error("event_io: checkpoint sync failed for " + impl_->path);
}

void EventWriter::close() {
  if (!impl_) return;
  auto impl = std::move(impl_);  // closed even if the finalize throws
  // Backpatch the count, then push it all the way to stable storage:
  // an fflush alone leaves the header (and the tail of the event
  // stream) in page cache, where a crash after close() returned
  // success could still drop it — leaving a header that claims N
  // events backed by nothing.
  if (std::fseek(impl->file.f, 8, SEEK_SET) != 0 ||
      std::fwrite(&count_, 1, sizeof count_, impl->file.f) != sizeof count_ ||
      !util::flush_to_disk(impl->file.f))
    throw std::runtime_error("event_io: header finalize failed for " + impl->path);
  std::FILE* f = impl->file.f;
  impl->file.f = nullptr;  // File dtor must not double-close
  if (std::fclose(f) != 0)
    throw std::runtime_error("event_io: close failed for " + impl->path);
}

// ------------------------------------------------------------------ //

struct EventReader::Impl {
  File file;
  std::string path;
  std::uint64_t file_size = 0;
  /// Bytes consumed so far (header included). Tracked explicitly so
  /// the "does this list length fit in the file" corruption checks
  /// never consult ftell — a transient ftell/fread failure used to be
  /// indistinguishable from a corrupt count.
  std::uint64_t pos = 0;
  util::metrics::Histogram batch_size{"report.reader.batch_size"};
  explicit Impl(const std::string& p) : file(p, "rb"), path(p) {}

  /// Read exactly n bytes. Distinguishes an I/O error (ferror) from
  /// running out of file (truncation) in the thrown message.
  void read_bytes(void* p, std::size_t n) {
    if (std::fread(p, 1, n, file.f) != n) {
      if (std::ferror(file.f))
        throw std::runtime_error("event_io: read failed (I/O error) in " + path);
      throw std::runtime_error("event_io: truncated file " + path);
    }
    pos += n;
  }

  template <typename T>
  T get() {
    T v{};
    read_bytes(&v, sizeof v);
    return v;
  }

  /// Payload bytes left in the file after the current position.
  [[nodiscard]] std::uint64_t remaining() const noexcept {
    return pos > file_size ? 0 : file_size - pos;
  }
};

EventReader::EventReader(const std::string& path) : impl_(std::make_unique<Impl>(path)) {
  std::FILE* f = impl_->file.f;
  std::setvbuf(f, nullptr, _IOFBF, 1 << 20);
  long size = 0;
  if (std::fseek(f, 0, SEEK_END) != 0 || (size = std::ftell(f)) < 0 ||
      std::fseek(f, 0, SEEK_SET) != 0)
    throw std::runtime_error("event_io: cannot stat " + path);
  impl_->file_size = static_cast<std::uint64_t>(size);
  if (impl_->file_size < kHeaderBytes)
    throw std::runtime_error("event_io: truncated header in " + path);
  if (impl_->get<std::uint64_t>() != kMagic)
    throw std::runtime_error("event_io: not an event file: " + path);
  total_ = impl_->get<std::uint64_t>();
  // Shape check in the MappedLogReader mold: every event occupies at
  // least its fixed bytes, so a garbage count is caught at open
  // instead of over-reserving downstream.
  const std::uint64_t body = impl_->file_size - kHeaderBytes;
  if (total_ > body / kFixedEventBytes)
    throw std::runtime_error("event_io: header claims " + std::to_string(total_) +
                             " events but " + path + " has only " + std::to_string(body) +
                             " payload bytes");
}

EventReader::~EventReader() = default;

bool EventReader::next(ScanEvent& out) {
  if (read_ >= total_) return false;
  Impl& im = *impl_;
  ScanEvent ev;
  const auto hi = im.get<std::uint64_t>();
  const auto lo = im.get<std::uint64_t>();
  const auto len = im.get<std::int32_t>();
  if (len < 0 || len > 128)
    throw std::runtime_error("event_io: corrupt prefix length in " + im.path);
  ev.source = net::Ipv6Prefix{net::Ipv6Address{hi, lo}, len};
  ev.first_us = im.get<sim::TimeUs>();
  ev.last_us = im.get<sim::TimeUs>();
  ev.packets = im.get<std::uint64_t>();
  ev.distinct_dsts = im.get<std::uint32_t>();
  ev.distinct_dsts_in_dns = im.get<std::uint32_t>();
  ev.src_asn = im.get<std::uint32_t>();
  // Bound each list length by the bytes actually left in the file, so
  // a corrupt length throws instead of reserving gigabytes. remaining()
  // is derived from the tracked offset, never from ftell — an I/O
  // failure surfaces from read_bytes() as "read failed", and can no
  // longer masquerade as a corrupt count.
  const auto nports = im.get<std::uint32_t>();
  if (nports > im.remaining() / kPortEntryBytes)
    throw std::runtime_error("event_io: corrupt port count in " + im.path);
  ev.port_packets.reserve(nports);
  for (std::uint32_t p = 0; p < nports; ++p) {
    const auto port = im.get<std::uint16_t>();
    const auto n = im.get<std::uint64_t>();
    ev.port_packets.emplace_back(port, n);
  }
  const auto nweeks = im.get<std::uint32_t>();
  if (nweeks > im.remaining() / kWeekEntryBytes)
    throw std::runtime_error("event_io: corrupt week count in " + im.path);
  ev.weekly_packets.reserve(nweeks);
  for (std::uint32_t w = 0; w < nweeks; ++w) {
    const auto week = im.get<std::int32_t>();
    const auto n = im.get<std::uint64_t>();
    ev.weekly_packets.emplace_back(week, n);
  }
  ++read_;
  out = std::move(ev);
  return true;
}

std::size_t EventReader::next_batch(ScanEvent* out, std::size_t max) {
  std::size_t n = 0;
  while (n < max && next(out[n])) ++n;
  if (n > 0) impl_->batch_size.observe(n);
  return n;
}

// ------------------------------------------------------------------ //

void write_events(const std::string& path, const std::vector<ScanEvent>& events) {
  EventWriter writer(path);
  for (const auto& ev : events) {
    ScanEvent copy = ev;
    writer.on_event(std::move(copy));
  }
  writer.close();
}

std::vector<ScanEvent> read_events(const std::string& path) {
  EventReader reader(path);
  std::vector<ScanEvent> events;
  events.reserve(reader.total_events());
  ScanEvent ev;
  while (reader.next(ev)) events.push_back(std::move(ev));
  return events;
}

}  // namespace v6sonar::core
