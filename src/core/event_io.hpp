// Binary serialization of scan events.
//
// The bench harness detects once over the 15-month world and caches
// the event sets per aggregation level; every table/figure bench then
// loads events in milliseconds instead of re-running detection.
#pragma once

#include <string>
#include <vector>

#include "core/scan_event.hpp"

namespace v6sonar::core {

/// Write events to `path`. Throws std::runtime_error on I/O failure.
void write_events(const std::string& path, const std::vector<ScanEvent>& events);

/// Read events back. Throws std::runtime_error on missing/corrupt files.
[[nodiscard]] std::vector<ScanEvent> read_events(const std::string& path);

}  // namespace v6sonar::core
