// Binary serialization of scan events.
//
// The bench harness detects once over the 15-month world and caches
// the event sets per aggregation level; every table/figure bench then
// loads events in milliseconds instead of re-running detection. The
// CLI uses the same format to spill a detection run's events
// (`detect --events`) and re-analyze them later (`report`) without
// ever materializing the set in memory: EventWriter is a
// core::EventSink, EventReader hands events back in batches.
//
// Format (little-endian, host == file layout on all supported
// targets): magic u64 "V6EVTS01", count u64, then per event the fixed
// header (source hi/lo/len, first_us, last_us, packets, distinct_dsts,
// distinct_dsts_in_dns, src_asn) followed by the variable port and
// weekly count lists. The writer backpatches the count on close, so a
// crashed run leaves a file whose count mismatches its size instead of
// silently truncated-but-valid data — the reader checks a size lower
// bound at open, like sim::MappedLogReader.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/event_sink.hpp"
#include "core/scan_event.hpp"

namespace v6sonar::core {

/// Streaming writer: serializes each event as it arrives (an
/// EventSink endpoint for detection-time spilling). flush() — or
/// close(), or destruction — finalizes the header count.
/// Throws std::runtime_error on I/O failure.
class EventWriter final : public EventSink {
 public:
  explicit EventWriter(const std::string& path);

  /// Resume an interrupted spill at a checkpointed position: the
  /// existing file is truncated to `resume_offset` bytes (discarding
  /// any events written after the checkpoint) and writing continues
  /// from there with the count restored to `resume_count`. Both values
  /// come from a prior checkpoint_sync()/written() pair.
  EventWriter(const std::string& path, std::uint64_t resume_count,
              std::uint64_t resume_offset);

  /// Closes (best effort — errors are swallowed; call close() first
  /// if you need them reported).
  ~EventWriter() override;
  EventWriter(const EventWriter&) = delete;
  EventWriter& operator=(const EventWriter&) = delete;

  void on_event(ScanEvent&& ev) override;
  /// Sink-contract flush: finalize the header count and close.
  void flush() override { close(); }
  /// Idempotent close; throws on finalize failure.
  void close();

  /// Make everything written so far durable without closing:
  /// backpatches the header count, pushes the file to stable storage,
  /// and returns to the append position. After a crash, the file is a
  /// valid event file holding at least the events present at the last
  /// checkpoint_sync(); the resume constructor truncates the rest.
  void checkpoint_sync();

  [[nodiscard]] std::uint64_t written() const noexcept { return count_; }
  /// Current append position in bytes (header included) — the
  /// resume_offset to checkpoint alongside written().
  [[nodiscard]] std::uint64_t offset() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::uint64_t count_ = 0;
};

/// Streaming reader: validates the header at open (magic + a
/// count-vs-file-size lower bound), then hands events back one at a
/// time or in batches — memory stays bounded by the batch, not the
/// file. Throws std::runtime_error on corrupt or truncated input.
class EventReader final {
 public:
  explicit EventReader(const std::string& path);
  ~EventReader();
  EventReader(const EventReader&) = delete;
  EventReader& operator=(const EventReader&) = delete;

  /// Read the next event into `out`; false at end-of-stream.
  [[nodiscard]] bool next(ScanEvent& out);
  /// Read up to `max` events; returns how many were produced (0 at
  /// end). Observes the report.reader.batch_size histogram.
  std::size_t next_batch(ScanEvent* out, std::size_t max);

  /// Events the header claims (== events a complete read returns).
  [[nodiscard]] std::uint64_t total_events() const noexcept { return total_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::uint64_t total_ = 0;
  std::uint64_t read_ = 0;
};

/// Write events to `path`. Throws std::runtime_error on I/O failure.
void write_events(const std::string& path, const std::vector<ScanEvent>& events);

/// Read events back. Throws std::runtime_error on missing/corrupt files.
[[nodiscard]] std::vector<ScanEvent> read_events(const std::string& path);

}  // namespace v6sonar::core
