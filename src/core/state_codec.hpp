// Versioned state lifecycle: the freeze/thaw seam and its container.
//
// Every long-lived pipeline stage — ScanDetector, ArtifactFilter,
// StreamingIds, the analysis::Analyzer family — implements StateCodec:
// save() serializes the stage's complete accumulated state into a
// StateWriter, load() reconstructs it into a same-configured instance.
// The contract mirrors Analyzer::merge: load() onto a fresh instance
// followed by feeding records k.. must be output-byte-identical to
// feeding records 0.. into one uninterrupted instance. Derived caches
// (expiry reminder heaps, week-slot pointers, prefetch scratch) are
// NOT serialized — they are rebuilt, and the stages' own invariants
// make the rebuild output-invisible.
//
// CheckpointWriter/CheckpointReader frame saved sections into a
// single-file container:
//
//   magic "V6CKPT01" | format u32 | state_version u32 | sections u32
//   per section: name (u32 len + bytes) | payload u64 len | crc32 u32
//                | payload bytes
//
// Durability follows the event-spill lessons: the writer assembles
// everything in memory, writes to <path>.tmp, fsyncs, renames over
// <path>, and fsyncs the directory — a crash mid-checkpoint leaves
// either the previous complete checkpoint or none, never a torn file.
// The reader validates magic, versions, and every section CRC before
// handing a byte out; any anomaly is a std::runtime_error, never a
// crash (the corruption-fuzz test flips bits over the whole file to
// pin this down).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/adaptive.hpp"
#include "core/scan_event.hpp"
#include "net/prefix.hpp"
#include "util/state_io.hpp"

namespace v6sonar::core {

/// Interface every checkpointable pipeline stage implements.
class StateCodec {
 public:
  virtual ~StateCodec() = default;

  /// Serialize complete accumulated state (configuration fingerprint
  /// first, so load() can reject a mismatched instance).
  virtual void save(util::StateWriter& w) const = 0;

  /// Reconstruct state saved by save() into this instance, which must
  /// be freshly constructed with the same configuration. Throws
  /// std::runtime_error on a truncated/corrupt payload or a
  /// configuration mismatch. Consumes exactly the bytes save() wrote —
  /// never calls expect_end(), so payloads compose (a stage can embed
  /// another stage's payload mid-section); whoever owns the section
  /// asserts end-of-section after the outermost load.
  virtual void load(util::StateReader& r) = 0;
};

/// Bump when any stage's save() schema changes incompatibly; readers
/// reject checkpoints from other versions (version-skew test).
inline constexpr std::uint32_t kCheckpointStateVersion = 1;

/// Shared serdes for the value types multiple stages carry. Explicit
/// field-by-field little-endian encoding (not pod images): these types
/// hold vectors and padding, so a raw image would be neither compact
/// nor well-defined.
inline void save_prefix(util::StateWriter& w, const net::Ipv6Prefix& p) {
  w.u64(p.address().hi());
  w.u64(p.address().lo());
  w.i32(p.length());
}

inline net::Ipv6Prefix load_prefix(util::StateReader& r) {
  const std::uint64_t hi = r.u64();
  const std::uint64_t lo = r.u64();
  const int len = r.i32();
  if (len < 0 || len > 128) throw std::runtime_error("state: bad prefix length");
  return net::Ipv6Prefix(net::Ipv6Address{hi, lo}, len);
}

inline void save_scan_event(util::StateWriter& w, const ScanEvent& ev) {
  save_prefix(w, ev.source);
  w.i64(ev.first_us);
  w.i64(ev.last_us);
  w.u64(ev.packets);
  w.u32(ev.distinct_dsts);
  w.u32(ev.distinct_dsts_in_dns);
  w.u32(ev.src_asn);
  w.u64(ev.port_packets.size());
  for (const auto& [port, n] : ev.port_packets) {
    w.u16(port);
    w.u64(n);
  }
  w.u64(ev.weekly_packets.size());
  for (const auto& [week, n] : ev.weekly_packets) {
    w.i32(week);
    w.u64(n);
  }
}

[[nodiscard]] inline ScanEvent load_scan_event(util::StateReader& r) {
  ScanEvent ev;
  ev.source = load_prefix(r);
  ev.first_us = r.i64();
  ev.last_us = r.i64();
  ev.packets = r.u64();
  ev.distinct_dsts = r.u32();
  ev.distinct_dsts_in_dns = r.u32();
  ev.src_asn = r.u32();
  const std::uint64_t n_ports = r.count(10);
  ev.port_packets.reserve(static_cast<std::size_t>(n_ports));
  for (std::uint64_t i = 0; i < n_ports; ++i) {
    const std::uint16_t port = r.u16();
    ev.port_packets.emplace_back(port, r.u64());
  }
  const std::uint64_t n_weeks = r.count(12);
  ev.weekly_packets.reserve(static_cast<std::size_t>(n_weeks));
  for (std::uint64_t i = 0; i < n_weeks; ++i) {
    const std::int32_t week = r.i32();
    ev.weekly_packets.emplace_back(week, r.u64());
  }
  return ev;
}

inline void save_attribution(util::StateWriter& w, const Attribution& a) {
  save_prefix(w, a.source);
  w.i32(a.level);
  w.u64(a.packets);
  w.u64(a.child_packets);
  w.u64(a.children);
  w.u32(a.src_asn);
}

[[nodiscard]] inline Attribution load_attribution(util::StateReader& r) {
  Attribution a;
  a.source = load_prefix(r);
  a.level = r.i32();
  a.packets = r.u64();
  a.child_packets = r.u64();
  a.children = static_cast<std::size_t>(r.u64());
  a.src_asn = r.u32();
  return a;
}

/// Assembles named sections in memory; commit() makes the file appear
/// atomically. Section names must be unique per checkpoint.
class CheckpointWriter {
 public:
  /// Add one named section holding `w`'s bytes (consumed).
  void add(const std::string& name, util::StateWriter&& w);

  /// Write-to-temp + fsync + rename + directory fsync. Throws
  /// std::runtime_error on any I/O failure (the target path is left
  /// untouched in that case).
  void commit(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> sections_;
};

/// Loads and validates a whole checkpoint file up front; sections are
/// then looked up by name.
class CheckpointReader {
 public:
  /// Reads the file, validates magic/versions, parses every section
  /// header and checks every CRC. Throws std::runtime_error on any
  /// corruption, truncation, or version skew.
  explicit CheckpointReader(const std::string& path);

  [[nodiscard]] bool has(const std::string& name) const noexcept;
  /// A reader over the named section's payload; throws if absent.
  [[nodiscard]] util::StateReader section(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> sections_;
};

}  // namespace v6sonar::core
