#include "core/fh_detector.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/stats.hpp"

namespace v6sonar::core {

void FhAccumulator::feed(const sim::LogRecord& r) {
  const net::Ipv6Prefix src{r.src, cfg_.source_prefix_len};
  Component& c = components_[{src, r.dst_port}];
  ++c.packets;
  c.icmpv6 |= r.proto == wire::IpProto::kIcmpv6;
  ++c.per_dst[r.dst];
  ++c.length_counts[r.frame_len];
  asn_of_.emplace(src, r.src_asn);
  ++records_seen_;
}

std::vector<FhScan> FhAccumulator::finish() const {
  std::map<net::Ipv6Prefix, FhScan> merged;
  for (const auto& [key, c] : components_) {
    const auto& [src, port] = key;
    if (c.per_dst.size() < cfg_.min_destinations) continue;  // (i)
    // (iii): fewer than max packets on this port per destination IP.
    bool repeat_heavy = false;
    for (const auto& [dst, n] : c.per_dst) repeat_heavy |= n >= cfg_.max_packets_per_dst;
    if (repeat_heavy) continue;
    // (iv): near-constant packet length.
    std::vector<std::uint64_t> counts;
    counts.reserve(c.length_counts.size());
    for (const auto& [len, n] : c.length_counts) counts.push_back(n);
    if (util::normalized_entropy(counts) >= cfg_.max_length_entropy) continue;

    FhScan& scan = merged[src];
    if (scan.ports.empty()) {
      scan.source = src;
      scan.src_asn = asn_of_.at(src);
    }
    scan.packets += c.packets;
    scan.ports.push_back(port);
    scan.icmpv6 |= c.icmpv6;
    // The distinct-destination union is recomputed below.
  }

  // Union of destinations across qualifying components per source.
  if (!merged.empty()) {
    std::unordered_map<net::Ipv6Prefix, std::unordered_set<net::Ipv6Address>> unions;
    for (const auto& [key, c] : components_) {
      const auto it = merged.find(key.first);
      if (it == merged.end()) continue;
      if (!std::binary_search(it->second.ports.begin(), it->second.ports.end(), key.second))
        continue;
      auto& u = unions[key.first];
      for (const auto& [dst, n] : c.per_dst) u.insert(dst);
    }
    for (auto& [src, scan] : merged)
      scan.distinct_dsts = static_cast<std::uint32_t>(unions[src].size());
  }

  std::vector<FhScan> out;
  out.reserve(merged.size());
  for (auto& [src, scan] : merged) {
    std::sort(scan.ports.begin(), scan.ports.end());
    out.push_back(std::move(scan));
  }
  return out;
}

std::vector<FhScan> fh_detect(std::span<const sim::LogRecord> window, const FhConfig& cfg) {
  FhAccumulator acc(cfg);
  acc.feed_batch(window);
  return acc.finish();
}

}  // namespace v6sonar::core
