#include "core/fh_detector.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "util/stats.hpp"

namespace v6sonar::core {

namespace {

struct Component {
  std::uint64_t packets = 0;
  bool icmpv6 = false;
  std::unordered_map<net::Ipv6Address, std::uint32_t> per_dst;
  std::unordered_map<std::uint16_t, std::uint64_t> length_counts;
};

}  // namespace

std::vector<FhScan> fh_detect(std::span<const sim::LogRecord> window, const FhConfig& cfg) {
  // (source, port) -> component. std::map keeps output deterministic.
  std::map<std::pair<net::Ipv6Prefix, std::uint16_t>, Component> components;
  std::unordered_map<net::Ipv6Prefix, std::uint32_t> asn_of;

  for (const auto& r : window) {
    const net::Ipv6Prefix src{r.src, cfg.source_prefix_len};
    Component& c = components[{src, r.dst_port}];
    ++c.packets;
    c.icmpv6 |= r.proto == wire::IpProto::kIcmpv6;
    ++c.per_dst[r.dst];
    ++c.length_counts[r.frame_len];
    asn_of.emplace(src, r.src_asn);
  }

  std::map<net::Ipv6Prefix, FhScan> merged;
  for (const auto& [key, c] : components) {
    const auto& [src, port] = key;
    if (c.per_dst.size() < cfg.min_destinations) continue;  // (i)
    // (iii): fewer than max packets on this port per destination IP.
    bool repeat_heavy = false;
    for (const auto& [dst, n] : c.per_dst) repeat_heavy |= n >= cfg.max_packets_per_dst;
    if (repeat_heavy) continue;
    // (iv): near-constant packet length.
    std::vector<std::uint64_t> counts;
    counts.reserve(c.length_counts.size());
    for (const auto& [len, n] : c.length_counts) counts.push_back(n);
    if (util::normalized_entropy(counts) >= cfg.max_length_entropy) continue;

    FhScan& scan = merged[src];
    if (scan.ports.empty()) {
      scan.source = src;
      scan.src_asn = asn_of.at(src);
    }
    scan.packets += c.packets;
    scan.ports.push_back(port);
    scan.icmpv6 |= c.icmpv6;
    // The distinct-destination union is recomputed below.
  }

  // Union of destinations across qualifying components per source.
  if (!merged.empty()) {
    std::unordered_map<net::Ipv6Prefix, std::unordered_set<net::Ipv6Address>> unions;
    for (const auto& [key, c] : components) {
      const auto it = merged.find(key.first);
      if (it == merged.end()) continue;
      if (!std::binary_search(it->second.ports.begin(), it->second.ports.end(), key.second))
        continue;
      auto& u = unions[key.first];
      for (const auto& [dst, n] : c.per_dst) u.insert(dst);
    }
    for (auto& [src, scan] : merged)
      scan.distinct_dsts = static_cast<std::uint32_t>(unions[src].size());
  }

  std::vector<FhScan> out;
  out.reserve(merged.size());
  for (auto& [src, scan] : merged) {
    std::sort(scan.ports.begin(), scan.ports.end());
    out.push_back(std::move(scan));
  }
  return out;
}

}  // namespace v6sonar::core
